package join

import (
	"math"
	"testing"

	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// corpus builds a workload where `hot` query indices have a planted
// partner in P at inner product ≈ target and all other pairs are weak.
func corpus(rng *xrand.RNG, nP, nQ, d int, target float64, hot []int) (P, Q []vec.Vector) {
	P = make([]vec.Vector, nP)
	for i := range P {
		P[i] = vec.Scaled(vec.Vector(rng.UnitVec(d)), 0.3)
	}
	Q = make([]vec.Vector, nQ)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(d))
	}
	for hi, qi := range hot {
		pi := hi % nP
		P[pi] = vec.Scaled(Q[qi].Clone(), target)
	}
	return P, Q
}

func TestNaiveSignedFindsPlanted(t *testing.T) {
	rng := xrand.New(1)
	hot := []int{2, 5}
	P, Q := corpus(rng, 20, 10, 16, 0.9, hot)
	res := NaiveSigned(P, Q, 0.8)
	if res.Compared != 200 {
		t.Fatalf("Compared = %d, want 200", res.Compared)
	}
	matched := res.MatchedQueries()
	for _, qi := range hot {
		if !matched[qi] {
			t.Fatalf("hot query %d not matched", qi)
		}
	}
	for _, m := range res.Matches {
		if m.Value < 0.8 {
			t.Fatalf("match below threshold: %+v", m)
		}
		if got := vec.Dot(P[m.PIdx], Q[m.QIdx]); math.Abs(got-m.Value) > 1e-12 {
			t.Fatalf("reported value %v != actual %v", m.Value, got)
		}
	}
}

func TestNaiveUnsignedSeesNegative(t *testing.T) {
	rng := xrand.New(2)
	P, Q := corpus(rng, 10, 5, 8, 0.9, nil)
	// Plant a strongly *negative* partner for query 3.
	P[4] = vec.Scaled(Q[3].Clone(), -0.95)
	signed := NaiveSigned(P, Q, 0.8)
	unsigned := NaiveUnsigned(P, Q, 0.8)
	if signed.MatchedQueries()[3] {
		t.Fatal("signed join must not match a negative partner")
	}
	if !unsigned.MatchedQueries()[3] {
		t.Fatal("unsigned join must match a negative partner")
	}
}

func TestLSHSignedJoinRecall(t *testing.T) {
	rng := xrand.New(3)
	hot := []int{0, 3, 7, 11}
	P, Q := corpus(rng, 200, 20, 16, 0.95, hot)
	fam, _ := lsh.NewHyperplane(16)
	j := LSHJoiner{Family: fam, K: 6, L: 24, Seed: 4}
	const s, cs = 0.9, 0.45
	approx, err := j.Signed(P, Q, s, cs)
	if err != nil {
		t.Fatal(err)
	}
	exact := NaiveSigned(P, Q, s)
	if r := Recall(exact, approx, s); r < 0.99 {
		t.Fatalf("recall %v too low", r)
	}
	if p := Precision(approx, cs, false); p != 1 {
		t.Fatalf("precision %v, want 1 (engine verifies)", p)
	}
}

func TestLSHJoinSubquadratic(t *testing.T) {
	rng := xrand.New(5)
	P, Q := corpus(rng, 500, 50, 16, 0.95, []int{1})
	fam, _ := lsh.NewHyperplane(16)
	j := LSHJoiner{Family: fam, K: 10, L: 8, Seed: 6}
	res, err := j.Signed(P, Q, 0.9, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	naiveWork := int64(len(P) * len(Q))
	if res.Compared >= naiveWork/4 {
		t.Fatalf("LSH compared %d pairs, naive is %d — not subquadratic", res.Compared, naiveWork)
	}
}

func TestLSHUnsignedJoinNegativePartner(t *testing.T) {
	rng := xrand.New(7)
	P, Q := corpus(rng, 100, 10, 16, 0.9, nil)
	P[42] = vec.Scaled(Q[6].Clone(), -0.97)
	fam, _ := lsh.NewHyperplane(16)
	j := LSHJoiner{Family: fam, K: 6, L: 24, Seed: 8}
	res, err := j.Unsigned(P, Q, 0.9, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchedQueries()[6] {
		t.Fatal("unsigned LSH join must find the negative partner via −q probe")
	}
}

func TestSketchJoinerUnsigned(t *testing.T) {
	rng := xrand.New(9)
	hot := []int{2}
	P, Q := corpus(rng, 128, 6, 16, 0.95, hot)
	j := SketchJoiner{Kappa: 3, Copies: 9, Seed: 10}
	const s = 0.9
	cs := s * j.GuaranteedC(len(P))
	res, err := j.Unsigned(P, Q, s, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchedQueries()[2] {
		t.Fatal("sketch join missed the planted partner")
	}
	if p := Precision(res, cs, true); p != 1 {
		t.Fatalf("precision %v", p)
	}
}

func TestSketchJoinerGuaranteedC(t *testing.T) {
	j := SketchJoiner{Kappa: 2}
	if got := j.GuaranteedC(16); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("GuaranteedC = %v, want 0.25", got)
	}
}

func TestThresholdValidation(t *testing.T) {
	fam, _ := lsh.NewHyperplane(4)
	j := LSHJoiner{Family: fam, K: 2, L: 2, Seed: 1}
	P := []vec.Vector{{1, 0, 0, 0}}
	Q := []vec.Vector{{1, 0, 0, 0}}
	if _, err := j.Signed(P, Q, -1, 0.5); err == nil {
		t.Fatal("s<0 must fail")
	}
	if _, err := j.Signed(P, Q, 0.5, 0.9); err == nil {
		t.Fatal("cs>s must fail")
	}
	sj := SketchJoiner{Kappa: 2, Copies: 1, Seed: 1}
	if _, err := sj.Unsigned(P, Q, 0, 0); err == nil {
		t.Fatal("s=0 must fail")
	}
}

func TestRecallSemantics(t *testing.T) {
	exact := Result{Matches: []Match{{QIdx: 0, Value: 0.95}, {QIdx: 1, Value: 0.92}}}
	approx := Result{Matches: []Match{{QIdx: 0, Value: 0.5}}}
	if got := Recall(exact, approx, 0.9); got != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", got)
	}
	// No promised queries → vacuous recall 1.
	if got := Recall(Result{}, approx, 0.9); got != 1 {
		t.Fatalf("vacuous Recall = %v", got)
	}
}

func TestPrecision(t *testing.T) {
	r := Result{Matches: []Match{{Value: 0.5}, {Value: 0.2}}}
	if got := Precision(r, 0.4, false); got != 0.5 {
		t.Fatalf("Precision = %v", got)
	}
	if got := Precision(Result{}, 0.4, false); got != 1 {
		t.Fatalf("empty Precision = %v", got)
	}
	neg := Result{Matches: []Match{{Value: -0.5}}}
	if got := Precision(neg, 0.4, true); got != 1 {
		t.Fatalf("unsigned Precision = %v", got)
	}
}

func BenchmarkNaiveSigned_500x50(b *testing.B) {
	rng := xrand.New(11)
	P, Q := corpus(rng, 500, 50, 32, 0.9, []int{1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveSigned(P, Q, 0.8)
	}
}

func BenchmarkLSHSigned_500x50(b *testing.B) {
	rng := xrand.New(12)
	P, Q := corpus(rng, 500, 50, 32, 0.9, []int{1})
	fam, _ := lsh.NewHyperplane(32)
	j := LSHJoiner{Family: fam, K: 8, L: 8, Seed: 13}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Signed(P, Q, 0.8, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}
