// Package join implements the IPS join engines of the reproduction:
// exact quadratic baselines, LSH-indexed approximate joins, the §4.3
// sketch-based join, and the signed↔unsigned reductions described in the
// paper's introduction (unsigned join = signed join against Q and −Q).
//
// All engines report the paper's Definition 1 semantics: for each query
// q ∈ Q, return at least one pair (p, q) with pᵀq ≥ cs (or |pᵀq| ≥ cs),
// under the promise that some p′ has pᵀq ≥ s; queries without a
// qualifying partner carry no guarantee. Engines also expose a Compared
// work counter so benchmarks can verify sub-quadratic behaviour.
package join

import (
	"fmt"
	"math"

	"repro/internal/flat"
	"repro/internal/lsh"
	"repro/internal/sketch"
	"repro/internal/vec"
)

// Match is one reported pair: query index, data index and the verified
// inner product (signed engines report the signed value, unsigned ones
// the absolute value).
type Match struct {
	QIdx, PIdx int
	Value      float64
}

// Result is the outcome of a join: one match per satisfied query, plus
// the number of candidate pairs examined (the work measure).
type Result struct {
	Matches  []Match
	Compared int64
}

// MatchedQueries returns the set of query indices with a reported pair.
func (r Result) MatchedQueries() map[int]bool {
	m := make(map[int]bool, len(r.Matches))
	for _, pair := range r.Matches {
		m[pair.QIdx] = true
	}
	return m
}

// NaiveSigned is the exact signed join: for each q, the maximising p is
// found by brute force and reported when pᵀq ≥ s. Time Θ(|P|·|Q|·d).
// The scan runs through a columnar copy of P (contiguous rows, blocked
// dot kernel), which keeps the quadratic baseline's constant factor
// honest in the engine comparisons. Panics on dimension mismatches,
// like vec.Dot.
func NaiveSigned(P, Q []vec.Vector, s float64) Result {
	return naiveScan(P, Q, s, false)
}

// NaiveUnsigned is the exact unsigned join (threshold on |pᵀq|).
func NaiveUnsigned(P, Q []vec.Vector, s float64) Result {
	return naiveScan(P, Q, s, true)
}

// naiveScan is the shared exact-join scan. For each query the argmax
// over P comes from a columnar batch-dot pass; scores are bit-identical
// to the per-pair vec.Dot loop because both use vec.DotKernel. Tiny
// query sets skip the columnar packing — copying P costs as much as
// scanning it once, so it only pays off amortized over several queries.
func naiveScan(P, Q []vec.Vector, s float64, unsigned bool) Result {
	var res Result
	if len(P) == 0 || len(Q) == 0 {
		return res
	}
	dots := make([]float64, len(P))
	var fs *flat.Store
	if len(Q) >= 4 {
		var err error
		if fs, err = flat.FromVectors(P); err != nil {
			panic(fmt.Sprintf("join: %v", err))
		}
	}
	for qi, q := range Q {
		if fs != nil {
			if err := fs.DotBatch(q, dots); err != nil {
				panic(fmt.Sprintf("join: query %d: %v", qi, err))
			}
		} else {
			for pi, p := range P {
				dots[pi] = vec.Dot(p, q)
			}
		}
		res.Compared += int64(len(P))
		best, bv := -1, math.Inf(-1)
		if unsigned {
			bv = -1.0
		}
		for pi, v := range dots {
			if unsigned && v < 0 {
				v = -v
			}
			if v > bv {
				best, bv = pi, v
			}
		}
		if best >= 0 && bv >= s {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: bv})
		}
	}
	return res
}

// LSHJoiner runs (cs, s) joins through a banding index over P.
type LSHJoiner struct {
	Family lsh.Family
	K, L   int
	Seed   uint64
}

// Signed runs the approximate signed (cs, s) join: index P, probe each
// q, and report the best colliding candidate when it clears cs.
func (j LSHJoiner) Signed(P, Q []vec.Vector, s, cs float64) (Result, error) {
	if err := validateThresholds(s, cs); err != nil {
		return Result{}, err
	}
	ix, err := lsh.NewIndex(j.Family, j.K, j.L, j.Seed)
	if err != nil {
		return Result{}, err
	}
	ix.InsertAll(P)
	var res Result
	for qi, q := range Q {
		cands := ix.Candidates(q)
		res.Compared += int64(len(cands))
		best, bv := -1, math.Inf(-1)
		for _, pi := range cands {
			if v := vec.Dot(P[pi], q); v > bv {
				best, bv = pi, v
			}
		}
		if best >= 0 && bv >= cs {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: bv})
		}
	}
	return res, nil
}

// Unsigned runs the approximate unsigned (cs, s) join via the paper's
// reduction: a signed probe with q and another with −q, keeping the
// larger absolute verified value.
func (j LSHJoiner) Unsigned(P, Q []vec.Vector, s, cs float64) (Result, error) {
	if err := validateThresholds(s, cs); err != nil {
		return Result{}, err
	}
	ix, err := lsh.NewIndex(j.Family, j.K, j.L, j.Seed)
	if err != nil {
		return Result{}, err
	}
	ix.InsertAll(P)
	var res Result
	for qi, q := range Q {
		nq := vec.Neg(q)
		best, bv := -1, -1.0
		for _, probe := range []vec.Vector{q, nq} {
			cands := ix.Candidates(probe)
			res.Compared += int64(len(cands))
			for _, pi := range cands {
				if v := vec.AbsDot(P[pi], q); v > bv {
					best, bv = pi, v
				}
			}
		}
		if best >= 0 && bv >= cs {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: bv})
		}
	}
	return res, nil
}

// SketchJoiner runs unsigned (cs, s) joins through the §4.3 trie
// recovery structure: approximation c = 1/n^{1/κ} with Õ(d·n^{1−2/κ})
// work per query.
type SketchJoiner struct {
	Kappa  float64
	Copies int
	Seed   uint64
}

// Unsigned builds the recoverer over P and queries each q once. A match
// is reported when the recovered candidate's exact |pᵀq| clears cs.
func (j SketchJoiner) Unsigned(P, Q []vec.Vector, s, cs float64) (Result, error) {
	if err := validateThresholds(s, cs); err != nil {
		return Result{}, err
	}
	rec, err := sketch.NewRecoverer(P, j.Kappa, j.Copies, j.Seed)
	if err != nil {
		return Result{}, err
	}
	var res Result
	// Work per query ≈ copies · Σ_levels m(level) — charge the sketch rows.
	perQuery := int64(rec.Levels() * j.Copies)
	for qi, q := range Q {
		pi, v := rec.Query(q)
		res.Compared += perQuery
		if v >= cs {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: pi, Value: v})
		}
	}
	return res, nil
}

// GuaranteedC returns the paper's approximation factor 1/n^{1/κ} for a
// sketch join over n data vectors.
func (j SketchJoiner) GuaranteedC(n int) float64 {
	return 1 / sketch.ApproxFactor(n, j.Kappa)
}

func validateThresholds(s, cs float64) error {
	if s <= 0 {
		return fmt.Errorf("join: threshold s=%v must be positive", s)
	}
	if cs < 0 || cs > s {
		return fmt.Errorf("join: cs=%v out of [0, s=%v]", cs, s)
	}
	return nil
}

// Recall scores an approximate result against the exact one per
// Definition 1: over queries where the exact join certifies a partner at
// ≥ s, the fraction for which the approximate join reported a pair
// (whose value, by construction, is ≥ cs).
func Recall(exact, approx Result, s float64) float64 {
	promised := 0
	hit := 0
	got := approx.MatchedQueries()
	for _, m := range exact.Matches {
		if m.Value >= s {
			promised++
			if got[m.QIdx] {
				hit++
			}
		}
	}
	if promised == 0 {
		return 1
	}
	return float64(hit) / float64(promised)
}

// Precision returns the fraction of reported approximate matches whose
// verified value clears cs (should be 1.0 for verifying engines; kept as
// an invariant check).
func Precision(approx Result, cs float64, unsigned bool) float64 {
	if len(approx.Matches) == 0 {
		return 1
	}
	ok := 0
	for _, m := range approx.Matches {
		v := m.Value
		if unsigned && v < 0 {
			v = -v
		}
		if v >= cs {
			ok++
		}
	}
	return float64(ok) / float64(len(approx.Matches))
}
