// Package join implements the IPS join engines of the reproduction:
// exact reference baselines, the flat-store Engine layer (blocked tiled
// kernel, Cauchy–Schwarz norm pruning), LSH-indexed approximate joins,
// the §4.3 sketch-based join, and the signed↔unsigned reductions
// described in the paper's introduction (unsigned join = signed join
// against Q and −Q).
//
// All engines report the paper's Definition 1 semantics: for each query
// q ∈ Q, return at least one pair (p, q) with pᵀq ≥ cs (or |pᵀq| ≥ cs),
// under the promise that some p′ has pᵀq ≥ s; queries without a
// qualifying partner carry no guarantee. Engines also expose a Compared
// work counter so benchmarks can verify sub-quadratic behaviour.
package join

import (
	"fmt"
	"math"

	"repro/internal/flat"
	"repro/internal/lsh"
	"repro/internal/sketch"
	"repro/internal/vec"
)

// Match is one reported pair (p, q): in pair notation the data index
// PIdx comes first and the query index QIdx second, matching the
// paper's (p, q) ∈ P × Q convention, and Value is the verified inner
// product (signed engines report the signed value, unsigned ones the
// absolute value).
type Match struct {
	QIdx, PIdx int
	Value      float64
}

// Result is the outcome of a join, plus the number of candidate pairs
// examined (the work measure). Matches are ordered by ascending QIdx;
// within one query, threshold-mode engines report a single pair and
// top-k engines report pairs by descending Value with ties toward the
// smaller PIdx. The ordering regression tests pin this contract.
type Result struct {
	Matches  []Match
	Compared int64
}

// MatchedQueries returns the set of query indices with at least one
// reported pair. The map is preallocated to the match count, which
// upper-bounds the distinct queries (top-k results may report several
// pairs per query).
func (r Result) MatchedQueries() map[int]bool {
	m := make(map[int]bool, len(r.Matches))
	for _, pair := range r.Matches {
		m[pair.QIdx] = true
	}
	return m
}

// NaiveSigned is the exact signed join reference: for each q, the
// maximising p is found by a per-pair row-slice scan and reported when
// pᵀq ≥ s. Time Θ(|P|·|Q|·d). This is deliberately the plain
// []vec.Vector nested loop — it is the ground truth the flat engines
// are tested against bit for bit (vec.Dot and the tiled kernels share
// vec.DotKernel's accumulation order) and the honest baseline the join
// benchmarks measure speedups over. Production paths should use the
// Tiled or NormPruned Engine instead. Panics on dimension mismatches,
// like vec.Dot.
func NaiveSigned(P, Q []vec.Vector, s float64) Result {
	return naiveScan(P, Q, s, false)
}

// NaiveUnsigned is the exact unsigned join reference (threshold on
// |pᵀq|).
func NaiveUnsigned(P, Q []vec.Vector, s float64) Result {
	return naiveScan(P, Q, s, true)
}

// naiveScan is the shared reference scan: argmax per query with ties
// broken toward the smaller p-index (first maximum encountered wins
// under the strict > comparison). NaN scores are rejected — they
// cannot be ranked and would otherwise latch the argmax and shadow
// every later candidate — mirroring flat.Acc and the flat engines.
func naiveScan(P, Q []vec.Vector, s float64, unsigned bool) Result {
	var res Result
	if len(P) == 0 || len(Q) == 0 {
		return res
	}
	for qi, q := range Q {
		best, bv := -1, math.Inf(-1)
		for pi, p := range P {
			v := vec.Dot(p, q)
			if math.IsNaN(v) {
				continue
			}
			if unsigned && v < 0 {
				v = -v
			}
			if best == -1 || v > bv {
				best, bv = pi, v
			}
		}
		res.Compared += int64(len(P))
		if best >= 0 && bv >= s {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: bv})
		}
	}
	return res
}

// packPair packs two row-slice operands into flat stores for the
// Engine layer. Empty operands return nil stores (the engines answer
// them with an empty result).
func packPair(P, Q []vec.Vector) (fp, fq *flat.Store, err error) {
	if len(P) == 0 || len(Q) == 0 {
		return nil, nil, nil
	}
	if fp, err = flat.FromVectors(P); err != nil {
		return nil, nil, fmt.Errorf("join: packing P: %w", err)
	}
	if fq, err = flat.FromVectors(Q); err != nil {
		return nil, nil, fmt.Errorf("join: packing Q: %w", err)
	}
	return fp, fq, nil
}

// LSHJoiner runs (cs, s) joins through a banding index over P. It is
// the row-slice adapter over the flat LSH Engine: operands are packed
// into columnar stores and candidates verify through the store kernel.
type LSHJoiner struct {
	Family lsh.Family
	K, L   int
	Seed   uint64
}

// engine adapts the joiner's prebuilt family to the Engine layer.
func (j LSHJoiner) engine() LSH {
	return LSH{
		NewFamily: func(int) (lsh.Family, error) { return j.Family, nil },
		K:         j.K, L: j.L, Seed: j.Seed,
	}
}

// JoinVectors packs row-slice operands into flat stores and runs one
// engine call; empty operands yield an empty result without error. It
// is the single adapter between the historical []vec.Vector surfaces
// (core engines, the legacy joiners here) and the flat Engine layer.
func JoinVectors(e Engine, P, Q []vec.Vector, s, cs float64, opts Opts) (Result, error) {
	if err := validateThresholds(s, cs); err != nil {
		return Result{}, err
	}
	fp, fq, err := packPair(P, Q)
	if err != nil || fp == nil {
		return Result{}, err
	}
	return e.Join(fp, fq, s, cs, opts)
}

// Signed runs the approximate signed (cs, s) join: index P, probe each
// q, and report the best colliding candidate when it clears cs.
func (j LSHJoiner) Signed(P, Q []vec.Vector, s, cs float64) (Result, error) {
	return JoinVectors(j.engine(), P, Q, s, cs, Opts{})
}

// Unsigned runs the approximate unsigned (cs, s) join via the paper's
// reduction: a signed probe with q and another with −q, keeping the
// larger absolute verified value.
func (j LSHJoiner) Unsigned(P, Q []vec.Vector, s, cs float64) (Result, error) {
	return JoinVectors(j.engine(), P, Q, s, cs, Opts{Unsigned: true})
}

// SketchJoiner runs unsigned (cs, s) joins through the §4.3 trie
// recovery structure: approximation c = 1/n^{1/κ} with Õ(d·n^{1−2/κ})
// work per query.
type SketchJoiner struct {
	Kappa  float64
	Copies int
	Seed   uint64
}

// Unsigned builds the recoverer over P and queries each q once. A match
// is reported when the recovered candidate's exact |pᵀq| — re-verified
// through the columnar store — clears cs.
func (j SketchJoiner) Unsigned(P, Q []vec.Vector, s, cs float64) (Result, error) {
	return JoinVectors(Sketch{Kappa: j.Kappa, Copies: j.Copies, Seed: j.Seed},
		P, Q, s, cs, Opts{Unsigned: true})
}

// GuaranteedC returns the paper's approximation factor 1/n^{1/κ} for a
// sketch join over n data vectors.
func (j SketchJoiner) GuaranteedC(n int) float64 {
	return 1 / sketch.ApproxFactor(n, j.Kappa)
}

func validateThresholds(s, cs float64) error {
	if s <= 0 {
		return fmt.Errorf("join: threshold s=%v must be positive", s)
	}
	if cs < 0 || cs > s {
		return fmt.Errorf("join: cs=%v out of [0, s=%v]", cs, s)
	}
	return nil
}

// Recall scores an approximate result against the exact one per
// Definition 1: over queries where the exact join certifies a partner at
// ≥ s, the fraction for which the approximate join reported a pair
// (whose value, by construction, is ≥ cs). When the exact result
// certifies no query at all, recall is vacuously 1.0 — a defined
// value, never the 0/0 NaN of the raw ratio.
func Recall(exact, approx Result, s float64) float64 {
	promised := 0
	hit := 0
	got := approx.MatchedQueries()
	for _, m := range exact.Matches {
		if m.Value >= s {
			promised++
			if got[m.QIdx] {
				hit++
			}
		}
	}
	if promised == 0 {
		return 1
	}
	return float64(hit) / float64(promised)
}

// Precision returns the fraction of reported approximate matches whose
// verified value clears cs (should be 1.0 for verifying engines; kept
// as an invariant check). An empty result has precision 1.0 by
// definition — no reported pair is wrong — never the 0/0 NaN of the
// raw ratio.
func Precision(approx Result, cs float64, unsigned bool) float64 {
	if len(approx.Matches) == 0 {
		return 1
	}
	ok := 0
	for _, m := range approx.Matches {
		v := m.Value
		if unsigned && v < 0 {
			v = -v
		}
		if v >= cs {
			ok++
		}
	}
	return float64(ok) / float64(len(approx.Matches))
}
