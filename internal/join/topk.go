package join

import (
	"sort"

	"repro/internal/lsh"
	"repro/internal/vec"
)

// Top-k join variants: the paper's footnote observes that "it is common
// to limit the number of occurrences of each tuple in a join result to
// a given number k". These engines report up to k pairs per query at
// (absolute) inner product ≥ threshold, in decreasing order.

// topKAccum keeps the k best (index, value) pairs seen so far.
type topKAccum struct {
	k     int
	items []Match
}

func (a *topKAccum) offer(pi int, v float64) {
	if len(a.items) < a.k {
		a.items = append(a.items, Match{PIdx: pi, Value: v})
		if len(a.items) == a.k {
			a.sortDesc()
		}
		return
	}
	if v <= a.items[a.k-1].Value {
		return
	}
	a.items[a.k-1] = Match{PIdx: pi, Value: v}
	// Bubble the new entry to place (k is small; insertion step is O(k)).
	for i := a.k - 1; i > 0 && a.items[i].Value > a.items[i-1].Value; i-- {
		a.items[i], a.items[i-1] = a.items[i-1], a.items[i]
	}
}

func (a *topKAccum) sortDesc() {
	sort.Slice(a.items, func(x, y int) bool { return a.items[x].Value > a.items[y].Value })
}

// flush appends the accumulated pairs ≥ threshold for query qi.
func (a *topKAccum) flush(qi int, threshold float64, out *[]Match) {
	if len(a.items) < a.k {
		a.sortDesc()
	}
	for _, m := range a.items {
		if m.Value < threshold {
			break
		}
		m.QIdx = qi
		*out = append(*out, m)
	}
}

// NaiveSignedTopK reports, for each query, its k largest inner products
// that clear s, in decreasing order.
func NaiveSignedTopK(P, Q []vec.Vector, s float64, k int) Result {
	var res Result
	if k <= 0 {
		return res
	}
	for qi, q := range Q {
		acc := topKAccum{k: k}
		for pi, p := range P {
			res.Compared++
			acc.offer(pi, vec.Dot(p, q))
		}
		acc.flush(qi, s, &res.Matches)
	}
	return res
}

// NaiveUnsignedTopK is the unsigned (|pᵀq|) counterpart; reported
// values are absolute.
func NaiveUnsignedTopK(P, Q []vec.Vector, s float64, k int) Result {
	var res Result
	if k <= 0 {
		return res
	}
	for qi, q := range Q {
		acc := topKAccum{k: k}
		for pi, p := range P {
			res.Compared++
			acc.offer(pi, vec.AbsDot(p, q))
		}
		acc.flush(qi, s, &res.Matches)
	}
	return res
}

// SignedTopK is the LSH-indexed top-k join: candidates from the banding
// index, verified and truncated to the k best ≥ cs per query.
func (j LSHJoiner) SignedTopK(P, Q []vec.Vector, s, cs float64, k int) (Result, error) {
	if err := validateThresholds(s, cs); err != nil {
		return Result{}, err
	}
	ix, err := lsh.NewIndex(j.Family, j.K, j.L, j.Seed)
	if err != nil {
		return Result{}, err
	}
	ix.InsertAll(P)
	var res Result
	if k <= 0 {
		return res, nil
	}
	for qi, q := range Q {
		cands := ix.Candidates(q)
		res.Compared += int64(len(cands))
		acc := topKAccum{k: k}
		for _, pi := range cands {
			acc.offer(pi, vec.Dot(P[pi], q))
		}
		acc.flush(qi, cs, &res.Matches)
	}
	return res, nil
}
