package join

import (
	"sort"

	"repro/internal/flat"
	"repro/internal/lsh"
	"repro/internal/vec"
)

// Top-k join variants: the paper's footnote observes that "it is common
// to limit the number of occurrences of each tuple in a join result to
// a given number k". These engines report up to k pairs per query at
// (absolute) inner product ≥ threshold, accumulated through flat.Acc —
// the single implementation of the canonical ordering (value
// descending, ties toward the smaller p-index) and of NaN rejection —
// so the tiled engines' top-k mode is bit-identical to the naive
// references here.

// NaiveSignedTopK reports, for each query, its k largest inner products
// that clear s, in decreasing order.
func NaiveSignedTopK(P, Q []vec.Vector, s float64, k int) Result {
	var res Result
	if k <= 0 {
		return res
	}
	for qi, q := range Q {
		acc := flat.NewAcc(k)
		for pi, p := range P {
			res.Compared++
			acc.Offer(pi, vec.Dot(p, q))
		}
		flushAcc(&acc, qi, s, &res)
	}
	return res
}

// NaiveUnsignedTopK is the unsigned (|pᵀq|) counterpart; reported
// values are absolute.
func NaiveUnsignedTopK(P, Q []vec.Vector, s float64, k int) Result {
	var res Result
	if k <= 0 {
		return res
	}
	for qi, q := range Q {
		acc := flat.NewAcc(k)
		for pi, p := range P {
			res.Compared++
			acc.Offer(pi, vec.AbsDot(p, q))
		}
		flushAcc(&acc, qi, s, &res)
	}
	return res
}

// MergePerQuery combines partial join results that share one global
// index space — e.g. per-shard-pair joins after local→global index
// translation — into a single Result under the canonical ordering
// (QIdx ascending; within a query, Value descending with ties toward
// the smaller PIdx). k > 0 keeps up to k pairs per query (top-k-pairs
// mode); k == 0 keeps the single best pair per query (threshold mode).
// Compared counters are summed. Partials are assumed pair-disjoint, as
// shard-pair joins are by construction.
func MergePerQuery(parts []Result, k int) Result {
	keep := k
	if keep <= 0 {
		keep = 1
	}
	var res Result
	total := 0
	for i := range parts {
		res.Compared += parts[i].Compared
		total += len(parts[i].Matches)
	}
	if total == 0 {
		return res
	}
	all := make([]Match, 0, total)
	for i := range parts {
		all = append(all, parts[i].Matches...)
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.QIdx != y.QIdx {
			return x.QIdx < y.QIdx
		}
		if x.Value != y.Value {
			return x.Value > y.Value
		}
		return x.PIdx < y.PIdx
	})
	res.Matches = make([]Match, 0, total)
	run := 0
	for i, m := range all {
		if i > 0 && all[i-1].QIdx == m.QIdx {
			run++
		} else {
			run = 0
		}
		if run < keep {
			res.Matches = append(res.Matches, m)
		}
	}
	return res
}

// SignedTopK is the LSH-indexed top-k join: candidates from the banding
// index, verified and truncated to the k best ≥ cs per query.
func (j LSHJoiner) SignedTopK(P, Q []vec.Vector, s, cs float64, k int) (Result, error) {
	if err := validateThresholds(s, cs); err != nil {
		return Result{}, err
	}
	ix, err := lsh.NewIndex(j.Family, j.K, j.L, j.Seed)
	if err != nil {
		return Result{}, err
	}
	ix.InsertAll(P)
	var res Result
	if k <= 0 {
		return res, nil
	}
	for qi, q := range Q {
		cands := ix.Candidates(q)
		res.Compared += int64(len(cands))
		acc := flat.NewAcc(k)
		for _, pi := range cands {
			acc.Offer(pi, vec.Dot(P[pi], q))
		}
		flushAcc(&acc, qi, cs, &res)
	}
	return res, nil
}
