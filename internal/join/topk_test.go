package join

import (
	"math"
	"testing"

	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// naiveTopK computes the reference answer for one query.
func naiveTopK(P []vec.Vector, q vec.Vector, s float64, k int, unsigned bool) []float64 {
	var vals []float64
	for _, p := range P {
		v := vec.Dot(p, q)
		if unsigned {
			v = math.Abs(v)
		}
		if v >= s {
			vals = append(vals, v)
		}
	}
	// descending selection sort of top k
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	if len(vals) > k {
		vals = vals[:k]
	}
	return vals
}

func TestNaiveSignedTopKMatchesReference(t *testing.T) {
	rng := xrand.New(1)
	P := make([]vec.Vector, 100)
	for i := range P {
		P[i] = vec.Vector(rng.UnitVec(8))
	}
	Q := make([]vec.Vector, 10)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(8))
	}
	const s, k = 0.2, 5
	res := NaiveSignedTopK(P, Q, s, k)
	byQuery := map[int][]float64{}
	for _, m := range res.Matches {
		byQuery[m.QIdx] = append(byQuery[m.QIdx], m.Value)
		if got := vec.Dot(P[m.PIdx], Q[m.QIdx]); math.Abs(got-m.Value) > 1e-12 {
			t.Fatalf("value mismatch %v vs %v", m.Value, got)
		}
	}
	for qi, q := range Q {
		want := naiveTopK(P, q, s, k, false)
		got := byQuery[qi]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestNaiveUnsignedTopKSeesNegatives(t *testing.T) {
	P := []vec.Vector{{1, 0}, {-1, 0}, {0.5, 0}}
	Q := []vec.Vector{{1, 0}}
	res := NaiveUnsignedTopK(P, Q, 0.4, 2)
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	// The two ±1 vectors tie at |1|; the 0.5 vector must be cut.
	for _, m := range res.Matches {
		if m.PIdx == 2 {
			t.Fatal("rank-3 vector included in top-2")
		}
		if m.Value != 1 {
			t.Fatalf("value %v", m.Value)
		}
	}
}

func TestTopKOrdering(t *testing.T) {
	P := []vec.Vector{{0.3}, {0.9}, {0.5}, {0.7}}
	Q := []vec.Vector{{1}}
	res := NaiveSignedTopK(P, Q, 0.0, 3)
	want := []float64{0.9, 0.7, 0.5}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	for i, m := range res.Matches {
		if m.Value != want[i] {
			t.Fatalf("rank %d: %v, want %v", i, m.Value, want[i])
		}
	}
}

func TestTopKZeroK(t *testing.T) {
	P := []vec.Vector{{1}}
	Q := []vec.Vector{{1}}
	if res := NaiveSignedTopK(P, Q, 0, 0); len(res.Matches) != 0 {
		t.Fatal("k=0 must return nothing")
	}
}

func TestLSHSignedTopK(t *testing.T) {
	rng := xrand.New(2)
	const d = 16
	q := vec.Vector(rng.UnitVec(d))
	P := make([]vec.Vector, 200)
	for i := range P {
		P[i] = vec.Vector(rng.UnitVec(d))
	}
	// Plant three graded partners.
	for i, scale := range []float64{0.95, 0.9, 0.85} {
		P[i] = vec.Scaled(q.Clone(), scale)
	}
	fam, _ := lsh.NewHyperplane(d)
	j := LSHJoiner{Family: fam, K: 6, L: 32, Seed: 3}
	res, err := j.SignedTopK(P, []vec.Vector{q}, 0.8, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(res.Matches))
	}
	wantOrder := []int{0, 1, 2}
	for i, m := range res.Matches {
		if m.PIdx != wantOrder[i] {
			t.Fatalf("rank %d: planted %d, want %d", i, m.PIdx, wantOrder[i])
		}
	}
}

func TestLSHSignedTopKValidation(t *testing.T) {
	fam, _ := lsh.NewHyperplane(2)
	j := LSHJoiner{Family: fam, K: 1, L: 1, Seed: 1}
	if _, err := j.SignedTopK(nil, nil, 0.5, 0.9, 2); err == nil {
		t.Fatal("cs>s must fail")
	}
}
