package join

// This file is the flat-store join layer: a pluggable Engine interface
// whose operands are two columnar stores, with a blocked, tiled P×Q
// exact kernel, a Cauchy–Schwarz norm-pruned variant, and the LSH /
// sketch joiners verifying candidates through the flat layout. Engines
// partition Q into row tiles and may execute tiles in parallel through
// a caller-supplied Runner (the serving layer passes its bounded worker
// pool); results are concatenated in tile order, so the output never
// depends on scheduling.

import (
	"fmt"
	"math"

	"repro/internal/flat"
	"repro/internal/lsh"
	"repro/internal/sketch"
	"repro/internal/vec"
)

const (
	// tilePRows is the P-block granularity of the tiled kernels: one
	// P-tile (256 rows × d floats) stays cache-resident while every
	// query of the current Q-tile is scored against it.
	tilePRows = 256
	// tileQRows is the Q-tile granularity — the unit of parallel work
	// handed to a Runner, and the number of queries that reuse one
	// loaded P-tile.
	tileQRows = 64
	// tileQGroup is the width of one multi-query micro-kernel pass
	// (flat.DotTile): the P-tile is scored against tileQGroup queries
	// per kernel call, so each P-row load is amortized across the
	// group. At 8×256 the score tile stays within 16 KiB.
	tileQGroup = 8
)

// scoreTile is the per-task score buffer of the tiled kernels: one
// tileQGroup × tilePRows block of dots, stack-allocated per Q-tile.
type scoreTile [tileQGroup * tilePRows]float64

// Runner executes n independent tasks, possibly in parallel, returning
// only once all of them have completed. *server.Pool satisfies it, so
// the serving layer's bounded worker budget can drive tile execution;
// a nil Runner in Opts means serial execution.
type Runner interface {
	ForEach(n int, fn func(i int))
}

// Opts configures an Engine run.
type Opts struct {
	// Unsigned thresholds |pᵀq| instead of pᵀq.
	Unsigned bool
	// TopK, when positive, switches from threshold mode (the single
	// best pair per query, Definition 1) to top-k-pairs mode: up to
	// TopK pairs per query at value ≥ cs, in decreasing order.
	TopK int
	// Runner parallelizes Q-tile execution; nil runs serially.
	Runner Runner
}

// Engine is a join algorithm over two flat stores: for each query row
// q of Q it reports pairs from P whose verified (absolute, when
// unsigned) inner product clears the acceptance threshold cs, under
// the promise threshold s ≥ cs of Definition 1. Exact engines, run
// with cs = s, reproduce the naive reference joins bit for bit.
type Engine interface {
	Name() string
	Join(P, Q *flat.Store, s, cs float64, opts Opts) (Result, error)
}

// Preparer is implemented by engines whose per-P state (banding index,
// sketch recoverer, sorted view) dominates a Join call and can be
// built once: Prepare returns an engine bound to P that reuses that
// state across any number of Join calls against the same store. A
// caller joining one data store against many query stores — the
// server's shard-pair fan-out — prepares each data store once instead
// of rebuilding per pair. The returned engine still answers safely
// for other P operands (it falls back to building from scratch).
type Preparer interface {
	Prepare(P *flat.Store) (Engine, error)
}

// validateEngineJoin checks the operands and thresholds shared by all
// flat engines.
func validateEngineJoin(P, Q *flat.Store, s, cs float64, opts Opts) error {
	if P == nil || Q == nil {
		return fmt.Errorf("join: nil store operand")
	}
	if P.Dim() != Q.Dim() {
		return fmt.Errorf("join: dimension mismatch: P has %d, Q has %d", P.Dim(), Q.Dim())
	}
	if opts.TopK < 0 {
		return fmt.Errorf("join: topk %d must be non-negative", opts.TopK)
	}
	return validateThresholds(s, cs)
}

// numQTiles returns the Q-tile count for nq queries.
func numQTiles(nq int) int { return (nq + tileQRows - 1) / tileQRows }

// runQTiles executes one task per Q-tile, serially or on the runner.
func runQTiles(tiles int, r Runner, task func(t int)) {
	if r == nil || tiles == 1 {
		for t := 0; t < tiles; t++ {
			task(t)
		}
		return
	}
	r.ForEach(tiles, task)
}

// concatParts concatenates per-tile partial results in tile order.
func concatParts(parts []Result) Result {
	var res Result
	total := 0
	for i := range parts {
		res.Compared += parts[i].Compared
		total += len(parts[i].Matches)
	}
	if total == 0 {
		return res
	}
	res.Matches = make([]Match, 0, total)
	for i := range parts {
		res.Matches = append(res.Matches, parts[i].Matches...)
	}
	return res
}

// Tiled is the exact engine: a blocked, tiled P×Q kernel over two flat
// stores. Every dot runs through the store's blocked kernel (shared
// with vec.DotKernel), so with cs = s the result is bit-identical to
// NaiveSigned / NaiveUnsigned over the same rows — including the
// argmax tie-break (lowest p-index wins) — at a fraction of the cost.
type Tiled struct{}

// Name implements Engine.
func (Tiled) Name() string { return "tiled" }

// Join implements Engine.
func (Tiled) Join(P, Q *flat.Store, s, cs float64, opts Opts) (Result, error) {
	if err := validateEngineJoin(P, Q, s, cs, opts); err != nil {
		return Result{}, err
	}
	nq := Q.Len()
	if P.Len() == 0 || nq == 0 {
		return Result{}, nil
	}
	tiles := numQTiles(nq)
	parts := make([]Result, tiles)
	runQTiles(tiles, opts.Runner, func(t int) {
		qlo := t * tileQRows
		qhi := min(qlo+tileQRows, nq)
		if opts.TopK > 0 {
			tiledTopK(P, Q, qlo, qhi, cs, opts.Unsigned, opts.TopK, &parts[t])
		} else {
			tiledBest(P, Q, qlo, qhi, cs, opts.Unsigned, &parts[t])
		}
	})
	return concatParts(parts), nil
}

// tiledBest runs threshold mode for one Q-tile: per-query argmax over P
// via the tiled kernel, reported when it clears cs. Scanning P in
// ascending row order with a strict > comparison reproduces the naive
// reference's tie-break (lowest p-index among maxima); NaN scores are
// rejected like everywhere else (an unrankable value must not latch
// the argmax and shadow later candidates).
func tiledBest(P, Q *flat.Store, qlo, qhi int, cs float64, unsigned bool, out *Result) {
	n := P.Len()
	nq := qhi - qlo
	best := make([]int, nq)
	bv := make([]float64, nq)
	for j := range best {
		best[j] = -1
		bv[j] = math.Inf(-1)
	}
	var buf scoreTile
	for plo := 0; plo < n; plo += tilePRows {
		phi := min(plo+tilePRows, n)
		nb := phi - plo
		for g := 0; g < nq; g += tileQGroup {
			gh := min(g+tileQGroup, nq)
			// One micro-kernel pass scores the whole query group
			// against the cache-resident P-tile.
			_ = P.DotTile(Q, qlo+g, qlo+gh, plo, phi, buf[:(gh-g)*nb])
			for j := g; j < gh; j++ {
				scores := buf[(j-g)*nb : (j-g+1)*nb]
				b, v := best[j], bv[j]
				for r := 0; r < nb; r++ {
					d := scores[r]
					if math.IsNaN(d) {
						continue
					}
					if unsigned && d < 0 {
						d = -d
					}
					if b == -1 || d > v {
						b, v = plo+r, d
					}
				}
				best[j], bv[j] = b, v
			}
		}
	}
	out.Compared = int64(n) * int64(nq)
	for j := 0; j < nq; j++ {
		if best[j] >= 0 && bv[j] >= cs {
			out.Matches = append(out.Matches, Match{QIdx: qlo + j, PIdx: best[j], Value: bv[j]})
		}
	}
}

// tiledTopK runs top-k-pairs mode for one Q-tile: a canonical (value
// descending, p-index ascending) accumulator per query, flushed at cs.
func tiledTopK(P, Q *flat.Store, qlo, qhi int, cs float64, unsigned bool, k int, out *Result) {
	n := P.Len()
	nq := qhi - qlo
	accs := make([]flat.Acc, nq)
	for j := range accs {
		accs[j] = flat.NewAcc(k)
	}
	var buf scoreTile
	for plo := 0; plo < n; plo += tilePRows {
		phi := min(plo+tilePRows, n)
		nb := phi - plo
		for g := 0; g < nq; g += tileQGroup {
			gh := min(g+tileQGroup, nq)
			_ = P.DotTile(Q, qlo+g, qlo+gh, plo, phi, buf[:(gh-g)*nb])
			for j := g; j < gh; j++ {
				scores := buf[(j-g)*nb : (j-g+1)*nb]
				acc := &accs[j]
				for r := 0; r < nb; r++ {
					v := scores[r]
					if unsigned && v < 0 {
						v = -v
					}
					acc.Offer(plo+r, v)
				}
			}
		}
	}
	out.Compared = int64(n) * int64(nq)
	for j := range accs {
		flushAcc(&accs[j], qlo+j, cs, out)
	}
}

// flushAcc appends an accumulator's hits at value ≥ cs for query qi.
func flushAcc(acc *flat.Acc, qi int, cs float64, out *Result) {
	for _, h := range acc.Hits() {
		if h.Score < cs {
			break
		}
		out.Matches = append(out.Matches, Match{QIdx: qi, PIdx: h.Index, Value: h.Score})
	}
}

// NormPruned is the exact engine with Cauchy–Schwarz tile skipping: P
// is traversed through a descending-norm view, and for each query the
// scan stops at the first P-tile whose leading norm bounds every
// remaining value below the acceptance bar — ‖p‖·‖q‖ < cs means no
// remaining pair can be reported, and once a better value is in hand
// the bar rises to it. Results are bit-identical to Tiled (the bound
// only skips work, never answers), so with cs = s it also matches the
// naive reference exactly; the reorder costs O(n log n + n·d) per call
// and pays off over the query set.
type NormPruned struct {
	// Sorted, when non-nil, is a prebuilt descending-norm view of the P
	// operand, letting callers that join one data store against many
	// query stores (e.g. the server's shard-pair fan-out) build it
	// once. It must have been built from the exact store passed as P.
	Sorted *flat.NormSorted

	// bound records, for Prepare-built engines, the store Sorted came
	// from, so a Join against a different P safely rebuilds instead of
	// answering from the wrong view.
	bound *flat.Store
}

// Name implements Engine.
func (NormPruned) Name() string { return "normpruned" }

// Prepare implements Preparer: the descending-norm view is built once
// and reused across Join calls against the same P.
func (e NormPruned) Prepare(P *flat.Store) (Engine, error) {
	return NormPruned{Sorted: flat.NewNormSorted(P), bound: P}, nil
}

// Join implements Engine.
func (e NormPruned) Join(P, Q *flat.Store, s, cs float64, opts Opts) (Result, error) {
	if err := validateEngineJoin(P, Q, s, cs, opts); err != nil {
		return Result{}, err
	}
	nq := Q.Len()
	if P.Len() == 0 || nq == 0 {
		return Result{}, nil
	}
	ns := e.Sorted
	if ns != nil && e.bound != nil && e.bound != P {
		ns = nil // prepared for a different store
	}
	if ns == nil {
		ns = flat.NewNormSorted(P)
	} else if ns.Len() != P.Len() || ns.Dim() != P.Dim() {
		return Result{}, fmt.Errorf("join: prebuilt norm view is %dx%d, operand is %dx%d",
			ns.Len(), ns.Dim(), P.Len(), P.Dim())
	}
	rs, perm := ns.Store(), ns.Perm()
	tiles := numQTiles(nq)
	parts := make([]Result, tiles)
	runQTiles(tiles, opts.Runner, func(t int) {
		qlo := t * tileQRows
		qhi := min(qlo+tileQRows, nq)
		if opts.TopK > 0 {
			normPrunedTopK(rs, perm, Q, qlo, qhi, cs, opts.Unsigned, opts.TopK, &parts[t])
		} else {
			normPrunedBest(rs, perm, Q, qlo, qhi, cs, opts.Unsigned, &parts[t])
		}
	})
	return concatParts(parts), nil
}

// normPrunedBest is threshold mode over the descending-norm store rs
// (perm maps physical → original row index). A query goes inactive at
// the first tile with lead·‖q‖ strictly below max(cs, best-so-far):
// every remaining value is then strictly smaller, so it can neither be
// reported nor displace (or tie) the running argmax. Because physical
// order is not index order, ties are broken explicitly toward the
// smaller original index, matching the ascending-order scan.
func normPrunedBest(rs *flat.Store, perm []int, Q *flat.Store, qlo, qhi int, cs float64, unsigned bool, out *Result) {
	n := rs.Len()
	nq := qhi - qlo
	best := make([]int, nq)
	bv := make([]float64, nq)
	done := make([]bool, nq)
	for j := range best {
		best[j] = -1
		bv[j] = math.Inf(-1)
	}
	live := nq
	var buf scoreTile
	var compared int64
	for plo := 0; plo < n && live > 0; plo += tilePRows {
		lead := rs.Norm(plo)
		phi := min(plo+tilePRows, n)
		nb := phi - plo
		// The per-tile Cauchy–Schwarz bound is evaluated per query of
		// the tile first (same rule and same point in the scan as the
		// single-query path); contiguous still-live runs then feed the
		// multi-query micro-kernel, so dead queries cost nothing.
		for j := 0; j < nq; j++ {
			if done[j] {
				continue
			}
			stop := cs
			if bv[j] > stop {
				stop = bv[j]
			}
			if lead*Q.Norm(qlo+j) < stop {
				done[j] = true
				live--
			}
		}
		for j := 0; j < nq; {
			if done[j] {
				j++
				continue
			}
			g := j + 1
			for g < nq && !done[g] && g-j < tileQGroup {
				g++
			}
			_ = rs.DotTile(Q, qlo+j, qlo+g, plo, phi, buf[:(g-j)*nb])
			compared += int64(nb) * int64(g-j)
			for jj := j; jj < g; jj++ {
				scores := buf[(jj-j)*nb : (jj-j+1)*nb]
				b, v := best[jj], bv[jj]
				for r := 0; r < nb; r++ {
					d := scores[r]
					if math.IsNaN(d) {
						continue
					}
					if unsigned && d < 0 {
						d = -d
					}
					if orig := perm[plo+r]; b == -1 || d > v || (d == v && orig < b) {
						b, v = orig, d
					}
				}
				best[jj], bv[jj] = b, v
			}
			j = g
		}
	}
	out.Compared = compared
	for j := 0; j < nq; j++ {
		if best[j] >= 0 && bv[j] >= cs {
			out.Matches = append(out.Matches, Match{QIdx: qlo + j, PIdx: best[j], Value: bv[j]})
		}
	}
}

// normPrunedTopK is top-k-pairs mode with the same skipping rule, the
// bar being max(cs, the full accumulator's k-th best).
func normPrunedTopK(rs *flat.Store, perm []int, Q *flat.Store, qlo, qhi int, cs float64, unsigned bool, k int, out *Result) {
	n := rs.Len()
	nq := qhi - qlo
	accs := make([]flat.Acc, nq)
	done := make([]bool, nq)
	for j := range accs {
		accs[j] = flat.NewAcc(k)
	}
	live := nq
	var buf scoreTile
	var compared int64
	for plo := 0; plo < n && live > 0; plo += tilePRows {
		lead := rs.Norm(plo)
		phi := min(plo+tilePRows, n)
		nb := phi - plo
		for j := 0; j < nq; j++ {
			if done[j] {
				continue
			}
			acc := &accs[j]
			stop := cs
			if acc.Full() && acc.Threshold() > stop {
				stop = acc.Threshold()
			}
			if lead*Q.Norm(qlo+j) < stop {
				done[j] = true
				live--
			}
		}
		for j := 0; j < nq; {
			if done[j] {
				j++
				continue
			}
			g := j + 1
			for g < nq && !done[g] && g-j < tileQGroup {
				g++
			}
			_ = rs.DotTile(Q, qlo+j, qlo+g, plo, phi, buf[:(g-j)*nb])
			compared += int64(nb) * int64(g-j)
			for jj := j; jj < g; jj++ {
				scores := buf[(jj-j)*nb : (jj-j+1)*nb]
				acc := &accs[jj]
				for r := 0; r < nb; r++ {
					v := scores[r]
					if unsigned && v < 0 {
						v = -v
					}
					acc.Offer(perm[plo+r], v)
				}
			}
			j = g
		}
	}
	out.Compared = compared
	for j := range accs {
		flushAcc(&accs[j], qlo+j, cs, out)
	}
}

// LSH is the banding-index engine over the flat layout: P's rows are
// indexed as views into the store (no float copies), each query probes
// the index (plus −q under the paper's unsigned reduction), and every
// candidate is verified through the store's kernel. Ties among
// candidates break toward the smaller p-index, like the exact engines.
type LSH struct {
	// NewFamily builds the hash family for the operand dimension.
	NewFamily func(d int) (lsh.Family, error)
	// K concatenated hashes per table, L tables (defaults 8, 16).
	K, L int
	Seed uint64

	// prebuilt holds Prepare's per-P index, reused when Join sees the
	// same store again.
	prebuilt *lshState
}

// lshState is an index bound to the store it was built over.
type lshState struct {
	store *flat.Store
	ix    *lsh.Index
}

// Name implements Engine.
func (LSH) Name() string { return "lsh" }

// buildIndex constructs the banding index over P's rows (views into
// the store, no float copies).
func (e LSH) buildIndex(P *flat.Store) (*lsh.Index, error) {
	if e.NewFamily == nil {
		return nil, fmt.Errorf("join: LSH engine needs NewFamily")
	}
	fam, err := e.NewFamily(P.Dim())
	if err != nil {
		return nil, err
	}
	k, l := e.K, e.L
	if k == 0 {
		k = 8
	}
	if l == 0 {
		l = 16
	}
	ix, err := lsh.NewIndex(fam, k, l, e.Seed)
	if err != nil {
		return nil, err
	}
	ix.InsertAll(P.Rows())
	return ix, nil
}

// Prepare implements Preparer: the banding index over P is built once
// and reused across Join calls against the same store.
func (e LSH) Prepare(P *flat.Store) (Engine, error) {
	ix, err := e.buildIndex(P)
	if err != nil {
		return nil, err
	}
	e.prebuilt = &lshState{store: P, ix: ix}
	return e, nil
}

// Join implements Engine.
func (e LSH) Join(P, Q *flat.Store, s, cs float64, opts Opts) (Result, error) {
	if err := validateEngineJoin(P, Q, s, cs, opts); err != nil {
		return Result{}, err
	}
	nq := Q.Len()
	if P.Len() == 0 || nq == 0 {
		return Result{}, nil
	}
	var ix *lsh.Index
	if e.prebuilt != nil && e.prebuilt.store == P {
		ix = e.prebuilt.ix
	} else {
		var err error
		if ix, err = e.buildIndex(P); err != nil {
			return Result{}, err
		}
	}
	tiles := numQTiles(nq)
	parts := make([]Result, tiles)
	runQTiles(tiles, opts.Runner, func(t int) {
		qlo := t * tileQRows
		qhi := min(qlo+tileQRows, nq)
		out := &parts[t]
		for qi := qlo; qi < qhi; qi++ {
			q := Q.Row(qi)
			cands := ix.Candidates(q)
			if opts.Unsigned {
				seen := make(map[int]bool, len(cands))
				for _, pi := range cands {
					seen[pi] = true
				}
				for _, pi := range ix.Candidates(vec.Neg(q)) {
					if !seen[pi] {
						cands = append(cands, pi)
					}
				}
			}
			out.Compared += int64(len(cands))
			if opts.TopK > 0 {
				acc := flat.NewAcc(opts.TopK)
				for _, pi := range cands {
					acc.Offer(pi, verifyDot(P, pi, q, opts.Unsigned))
				}
				flushAcc(&acc, qi, cs, out)
				continue
			}
			best, bv := -1, math.Inf(-1)
			for _, pi := range cands {
				v := verifyDot(P, pi, q, opts.Unsigned)
				if math.IsNaN(v) {
					continue
				}
				if best == -1 || v > bv || (v == bv && pi < best) {
					best, bv = pi, v
				}
			}
			if best >= 0 && bv >= cs {
				out.Matches = append(out.Matches, Match{QIdx: qi, PIdx: best, Value: bv})
			}
		}
	})
	return concatParts(parts), nil
}

// verifyDot scores one candidate pair through the flat store's kernel.
func verifyDot(P *flat.Store, pi int, q vec.Vector, unsigned bool) float64 {
	v := P.Dot(pi, q)
	if unsigned && v < 0 {
		v = -v
	}
	return v
}

// Sketch is the §4.3 linear-sketch engine over the flat layout
// (unsigned only). The recoverer is top-1 by construction, so at most
// one pair per query is reported regardless of Opts.TopK; the
// recovered candidate's value is re-verified through the store.
type Sketch struct {
	Kappa  float64
	Copies int
	Seed   uint64

	// prebuilt holds Prepare's per-P recoverer, reused when Join sees
	// the same store again.
	prebuilt *sketchState
}

// sketchState is a recoverer bound to the store it was built over.
type sketchState struct {
	store *flat.Store
	rec   *sketch.Recoverer
}

// Name implements Engine.
func (Sketch) Name() string { return "sketch" }

// params resolves the zero-value defaults (κ=2, 9 copies).
func (e Sketch) params() (kappa float64, copies int) {
	kappa, copies = e.Kappa, e.Copies
	if kappa == 0 {
		kappa = 2
	}
	if copies == 0 {
		copies = 9
	}
	return kappa, copies
}

// Prepare implements Preparer: the recoverer over P is built once and
// reused across Join calls against the same store.
func (e Sketch) Prepare(P *flat.Store) (Engine, error) {
	kappa, copies := e.params()
	rec, err := sketch.NewRecoverer(P.Rows(), kappa, copies, e.Seed)
	if err != nil {
		return nil, err
	}
	e.prebuilt = &sketchState{store: P, rec: rec}
	return e, nil
}

// Join implements Engine.
func (e Sketch) Join(P, Q *flat.Store, s, cs float64, opts Opts) (Result, error) {
	if err := validateEngineJoin(P, Q, s, cs, opts); err != nil {
		return Result{}, err
	}
	if !opts.Unsigned {
		return Result{}, fmt.Errorf("join: sketch engine supports unsigned joins only")
	}
	nq := Q.Len()
	if P.Len() == 0 || nq == 0 {
		return Result{}, nil
	}
	kappa, copies := e.params()
	var rec *sketch.Recoverer
	if e.prebuilt != nil && e.prebuilt.store == P {
		rec = e.prebuilt.rec
	} else {
		var err error
		if rec, err = sketch.NewRecoverer(P.Rows(), kappa, copies, e.Seed); err != nil {
			return Result{}, err
		}
	}
	perQuery := int64(rec.Levels() * copies)
	tiles := numQTiles(nq)
	parts := make([]Result, tiles)
	runQTiles(tiles, opts.Runner, func(t int) {
		qlo := t * tileQRows
		qhi := min(qlo+tileQRows, nq)
		out := &parts[t]
		for qi := qlo; qi < qhi; qi++ {
			q := Q.Row(qi)
			pi, _ := rec.Query(q)
			out.Compared += perQuery
			if pi < 0 {
				continue
			}
			if v := verifyDot(P, pi, q, true); v >= cs {
				out.Matches = append(out.Matches, Match{QIdx: qi, PIdx: pi, Value: v})
			}
		}
	})
	return concatParts(parts), nil
}
