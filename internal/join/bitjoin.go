package join

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/vec"
)

// This file implements exact joins over the paper's restricted domains
// {−1,1}^d and {0,1}^d using the bit-packed popcount kernels — the
// representation in which Theorems 1 and 2 state their hardness — plus
// a goroutine-parallel version of the dense exact join. The packed
// kernels process 64 coordinates per word, which is the practical
// "constant-factor" ceiling for exact joins that the subquadratic
// algorithms have to beat.

// SignsSigned is the exact signed (≥ s) join over {−1,1}^d vectors.
func SignsSigned(P, Q []*bitvec.Signs, s int) Result {
	var res Result
	for qi, q := range Q {
		best, bv := -1, 0
		for pi, p := range P {
			res.Compared++
			if v := bitvec.DotSigns(p, q); best == -1 || v > bv {
				best, bv = pi, v
			}
		}
		if best >= 0 && bv >= s {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: float64(bv)})
		}
	}
	return res
}

// SignsUnsigned is the exact unsigned (|·| ≥ s) join over {−1,1}^d.
func SignsUnsigned(P, Q []*bitvec.Signs, s int) Result {
	var res Result
	for qi, q := range Q {
		best, bv := -1, -1
		for pi, p := range P {
			res.Compared++
			v := bitvec.DotSigns(p, q)
			if v < 0 {
				v = -v
			}
			if v > bv {
				best, bv = pi, v
			}
		}
		if best >= 0 && bv >= s {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: float64(bv)})
		}
	}
	return res
}

// BitsJoin is the exact join over {0,1}^d (inner products are
// nonnegative, so signed and unsigned coincide — the observation the
// paper makes about the binary domain).
func BitsJoin(P, Q []*bitvec.Bits, s int) Result {
	var res Result
	for qi, q := range Q {
		best, bv := -1, -1
		for pi, p := range P {
			res.Compared++
			if v := bitvec.DotBits(p, q); v > bv {
				best, bv = pi, v
			}
		}
		if best >= 0 && bv >= s {
			res.Matches = append(res.Matches, Match{QIdx: qi, PIdx: best, Value: float64(bv)})
		}
	}
	return res
}

// ParallelSigned runs the exact signed join with one goroutine per CPU,
// sharding queries. Results are deterministic (per-query outputs do not
// depend on scheduling).
func ParallelSigned(P, Q []vec.Vector, s float64) Result {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(Q) {
		workers = len(Q)
	}
	if workers <= 1 {
		return NaiveSigned(P, Q, s)
	}
	type shard struct {
		matches  []Match
		compared int64
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			for qi := w; qi < len(Q); qi += workers {
				q := Q[qi]
				best, bv := -1, 0.0
				for pi, p := range P {
					sh.compared++
					if v := vec.Dot(p, q); best == -1 || v > bv {
						best, bv = pi, v
					}
				}
				if best >= 0 && bv >= s {
					sh.matches = append(sh.matches, Match{QIdx: qi, PIdx: best, Value: bv})
				}
			}
		}(w)
	}
	wg.Wait()
	var res Result
	for i := range shards {
		res.Compared += shards[i].compared
		res.Matches = append(res.Matches, shards[i].matches...)
	}
	// Sort by query index for deterministic output.
	sort.Slice(res.Matches, func(a, b int) bool {
		return res.Matches[a].QIdx < res.Matches[b].QIdx
	})
	return res
}
