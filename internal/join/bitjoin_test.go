package join

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func randSignsSet(r *rand.Rand, n, d int) []*bitvec.Signs {
	out := make([]*bitvec.Signs, n)
	for i := range out {
		s := bitvec.NewSigns(d)
		for j := 0; j < d; j++ {
			s.SetSign(j, 1-2*r.Intn(2))
		}
		out[i] = s
	}
	return out
}

func randBitsSet(r *rand.Rand, n, d int, density float64) []*bitvec.Bits {
	out := make([]*bitvec.Bits, n)
	for i := range out {
		b := bitvec.NewBits(d)
		for j := 0; j < d; j++ {
			if r.Float64() < density {
				b.SetBit(j, 1)
			}
		}
		out[i] = b
	}
	return out
}

func TestSignsSignedMatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	P := randSignsSet(r, 40, 96)
	Q := randSignsSet(r, 20, 96)
	fP := make([]vec.Vector, len(P))
	for i, p := range P {
		fP[i] = p.Floats()
	}
	fQ := make([]vec.Vector, len(Q))
	for i, q := range Q {
		fQ[i] = q.Floats()
	}
	const s = 10
	packed := SignsSigned(P, Q, s)
	float := NaiveSigned(fP, fQ, s)
	if len(packed.Matches) != len(float.Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(packed.Matches), len(float.Matches))
	}
	for i := range packed.Matches {
		if packed.Matches[i] != float.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, packed.Matches[i], float.Matches[i])
		}
	}
}

func TestSignsUnsignedSeesNegative(t *testing.T) {
	d := 64
	q := bitvec.NewSigns(d) // all +1
	pNeg := q.Neg()         // all −1: dot = −64
	pWeak := bitvec.NewSigns(d)
	for j := 0; j < d/2; j++ {
		pWeak.SetSign(j, -1) // dot = 0
	}
	P := []*bitvec.Signs{pWeak, pNeg}
	Q := []*bitvec.Signs{q}
	signed := SignsSigned(P, Q, 32)
	if len(signed.Matches) != 0 {
		t.Fatal("signed join must not match the negative partner")
	}
	unsigned := SignsUnsigned(P, Q, 32)
	if len(unsigned.Matches) != 1 || unsigned.Matches[0].PIdx != 1 {
		t.Fatalf("unsigned join = %+v", unsigned.Matches)
	}
}

func TestBitsJoin(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	P := randBitsSet(r, 30, 128, 0.3)
	Q := randBitsSet(r, 15, 128, 0.3)
	res := BitsJoin(P, Q, 8)
	// Verify every reported match and the per-query maximality.
	for _, m := range res.Matches {
		got := bitvec.DotBits(P[m.PIdx], Q[m.QIdx])
		if float64(got) != m.Value || got < 8 {
			t.Fatalf("match %+v has dot %d", m, got)
		}
		for pi := range P {
			if bitvec.DotBits(P[pi], Q[m.QIdx]) > got {
				t.Fatalf("match %+v is not the maximiser", m)
			}
		}
	}
	if res.Compared != int64(len(P)*len(Q)) {
		t.Fatalf("Compared = %d", res.Compared)
	}
}

func TestParallelSignedMatchesSequential(t *testing.T) {
	rng := xrand.New(3)
	P := make([]vec.Vector, 200)
	for i := range P {
		P[i] = vec.Vector(rng.UnitVec(16))
	}
	Q := make([]vec.Vector, 37)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(16))
	}
	const s = 0.5
	seq := NaiveSigned(P, Q, s)
	par := ParallelSigned(P, Q, s)
	if par.Compared != seq.Compared {
		t.Fatalf("work differs: %d vs %d", par.Compared, seq.Compared)
	}
	if len(par.Matches) != len(seq.Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(par.Matches), len(seq.Matches))
	}
	for i := range par.Matches {
		if par.Matches[i] != seq.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, par.Matches[i], seq.Matches[i])
		}
	}
}

func TestParallelSignedSingleQuery(t *testing.T) {
	P := []vec.Vector{{1, 0}, {0, 1}}
	Q := []vec.Vector{{1, 0}}
	res := ParallelSigned(P, Q, 0.5)
	if len(res.Matches) != 1 || res.Matches[0].PIdx != 0 {
		t.Fatalf("matches = %+v", res.Matches)
	}
}

func BenchmarkSignsSigned_256x64_d1024(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	P := randSignsSet(r, 256, 1024)
	Q := randSignsSet(r, 64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SignsSigned(P, Q, 100)
	}
}

func BenchmarkParallelSigned_1000x100(b *testing.B) {
	rng := xrand.New(5)
	P := make([]vec.Vector, 1000)
	for i := range P {
		P[i] = vec.Vector(rng.UnitVec(32))
	}
	Q := make([]vec.Vector, 100)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(32))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelSigned(P, Q, 0.8)
	}
}
