package join

import (
	"runtime"
	"testing"

	"repro/internal/flat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// The BenchmarkJoin suite measures the acceptance workload of the
// flat-store join layer: n=10k data rows against 256 queries at d=16,
// naive row-slice reference vs the tiled kernel vs norm-pruned tiling,
// single-threaded, plus the two kernels under a parallel runner.
// scripts/bench.sh records these in BENCH_<n>.json.

const (
	benchN  = 10_000
	benchNQ = 256
	benchD  = 16
	benchS  = 0.8
)

// benchWorkload builds the shared join benchmark inputs once.
func benchWorkload() (P, Q []vec.Vector, fp, fq *flat.Store) {
	rng := xrand.New(99)
	P = make([]vec.Vector, benchN)
	for i := range P {
		P[i] = vec.Scaled(vec.Vector(rng.UnitVec(benchD)), 0.2+0.8*rng.Float64())
	}
	Q = make([]vec.Vector, benchNQ)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(benchD))
	}
	for i := 0; i < benchNQ; i += 4 {
		P[(i*37)%benchN] = vec.Scaled(Q[i].Clone(), 0.9)
	}
	var err error
	if fp, err = flat.FromVectors(P); err != nil {
		panic(err)
	}
	if fq, err = flat.FromVectors(Q); err != nil {
		panic(err)
	}
	return P, Q, fp, fq
}

func BenchmarkJoinNaive_10kx256_d16(b *testing.B) {
	P, Q, _, _ := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveSigned(P, Q, benchS)
	}
}

func benchEngine(b *testing.B, e Engine, fp, fq *flat.Store, opts Opts) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Join(fp, fq, benchS, benchS, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinTiled_10kx256_d16(b *testing.B) {
	_, _, fp, fq := benchWorkload()
	benchEngine(b, Tiled{}, fp, fq, Opts{})
}

func BenchmarkJoinNormPruned_10kx256_d16(b *testing.B) {
	_, _, fp, fq := benchWorkload()
	benchEngine(b, NormPruned{}, fp, fq, Opts{})
}

func BenchmarkJoinTiledTopK8_10kx256_d16(b *testing.B) {
	_, _, fp, fq := benchWorkload()
	benchEngine(b, Tiled{}, fp, fq, Opts{TopK: 8})
}

func BenchmarkJoinTiledPool_10kx256_d16(b *testing.B) {
	_, _, fp, fq := benchWorkload()
	benchEngine(b, Tiled{}, fp, fq, Opts{Runner: newChanRunner(runtime.GOMAXPROCS(0))})
}

func BenchmarkJoinNormPrunedPool_10kx256_d16(b *testing.B) {
	_, _, fp, fq := benchWorkload()
	benchEngine(b, NormPruned{}, fp, fq, Opts{Runner: newChanRunner(runtime.GOMAXPROCS(0))})
}
