package join

import (
	"math"
	"sync"
	"testing"

	"repro/internal/flat"
	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// chanRunner is a minimal bounded parallel-for, standing in for the
// serving layer's pool (which the join package cannot import).
type chanRunner struct{ sem chan struct{} }

func newChanRunner(workers int) chanRunner {
	return chanRunner{sem: make(chan struct{}, workers)}
}

func (r chanRunner) ForEach(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		r.sem <- struct{}{}
		go func(i int) {
			defer func() { <-r.sem; wg.Done() }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// gridWorkload builds an adversarial P≠Q workload: random rows mixed
// with zero vectors, duplicated rows (exact signed ties), negated rows
// (exact unsigned ties), and planted strong partners for a quarter of
// the queries.
func gridWorkload(rng *xrand.RNG, n, nq, d int) (P, Q []vec.Vector) {
	Q = make([]vec.Vector, nq)
	for i := range Q {
		switch i % 5 {
		case 3:
			Q[i] = vec.New(d) // zero query
		case 4:
			Q[i] = Q[i-1].Clone() // duplicate query
		default:
			Q[i] = vec.Vector(rng.UnitVec(d))
		}
	}
	P = make([]vec.Vector, n)
	for i := range P {
		switch {
		case i%7 == 3:
			P[i] = vec.New(d) // zero row
		case i%7 == 5 && i > 0:
			P[i] = P[i-1].Clone() // duplicate row → signed tie
		case i%7 == 6 && i > 0:
			P[i] = vec.Neg(P[i-1]) // negated row → unsigned tie
		case i%11 == 1:
			P[i] = vec.Scaled(Q[(i/11)%nq].Clone(), 0.95) // planted partner
		default:
			P[i] = vec.Scaled(vec.Vector(rng.UnitVec(d)), 0.3+0.7*rng.Float64())
		}
	}
	return P, Q
}

// mustJoin runs an engine and fails the test on error.
func mustJoin(t *testing.T, e Engine, fp, fq *flat.Store, s, cs float64, opts Opts) Result {
	t.Helper()
	res, err := e.Join(fp, fq, s, cs, opts)
	if err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
	return res
}

// sameMatches asserts two match lists are identical — indices, order,
// and float bits.
func sameMatches(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestFlatEnginesMatchNaiveGrid is the equivalence grid of the flat
// exact engines: over randomized n/nq/d/s combinations — including
// ties, zero vectors, P≠Q sizes, and tile-boundary crossings — the
// tiled and norm-pruned joins must return the exact pair set of the
// naive row-slice reference, bit for bit, serially and under a
// parallel runner.
func TestFlatEnginesMatchNaiveGrid(t *testing.T) {
	rng := xrand.New(42)
	runner := newChanRunner(4)
	for _, n := range []int{1, 3, 17, 64, 300} {
		for _, nq := range []int{1, 5, 70} {
			for _, d := range []int{3, 8, 16} {
				P, Q := gridWorkload(rng, n, nq, d)
				fp, err := flat.FromVectors(P)
				if err != nil {
					t.Fatal(err)
				}
				fq, err := flat.FromVectors(Q)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range []float64{0.1, 0.55, 3.0} {
					for _, unsigned := range []bool{false, true} {
						want := NaiveSigned(P, Q, s)
						if unsigned {
							want = NaiveUnsigned(P, Q, s)
						}
						opts := Opts{Unsigned: unsigned}
						tiled := mustJoin(t, Tiled{}, fp, fq, s, s, opts)
						sameMatches(t, "tiled", want.Matches, tiled.Matches)
						if tiled.Compared != int64(n)*int64(nq) {
							t.Fatalf("tiled compared %d, want %d", tiled.Compared, n*nq)
						}
						pruned := mustJoin(t, NormPruned{}, fp, fq, s, s, opts)
						sameMatches(t, "normpruned", want.Matches, pruned.Matches)
						if pruned.Compared > tiled.Compared {
							t.Fatalf("normpruned compared %d > tiled %d", pruned.Compared, tiled.Compared)
						}
						popts := opts
						popts.Runner = runner
						par := mustJoin(t, Tiled{}, fp, fq, s, s, popts)
						sameMatches(t, "tiled/runner", want.Matches, par.Matches)
						parp := mustJoin(t, NormPruned{}, fp, fq, s, s, popts)
						sameMatches(t, "normpruned/runner", want.Matches, parp.Matches)
					}
				}
			}
		}
	}
}

// TestFlatEnginesTopKMatchNaive pins the top-k-pairs mode to the naive
// top-k reference on the same adversarial workloads.
func TestFlatEnginesTopKMatchNaive(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{4, 40, 280} {
		for _, nq := range []int{3, 66} {
			P, Q := gridWorkload(rng, n, nq, 8)
			fp, _ := flat.FromVectors(P)
			fq, _ := flat.FromVectors(Q)
			for _, k := range []int{1, 3, 10} {
				for _, unsigned := range []bool{false, true} {
					const s = 0.25
					want := NaiveSignedTopK(P, Q, s, k)
					if unsigned {
						want = NaiveUnsignedTopK(P, Q, s, k)
					}
					opts := Opts{Unsigned: unsigned, TopK: k}
					tiled := mustJoin(t, Tiled{}, fp, fq, s, s, opts)
					sameMatches(t, "tiled topk", want.Matches, tiled.Matches)
					pruned := mustJoin(t, NormPruned{}, fp, fq, s, s, opts)
					sameMatches(t, "normpruned topk", want.Matches, pruned.Matches)
				}
			}
		}
	}
}

// TestNormPrunedMatchesTiledLooseCS checks bit-identity also holds when
// cs < s — the pruning bar is the acceptance threshold, so loosening c
// must never change the answer relative to the tiled engine.
func TestNormPrunedMatchesTiledLooseCS(t *testing.T) {
	rng := xrand.New(11)
	P, Q := gridWorkload(rng, 300, 70, 16)
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	for _, cs := range []float64{0.0, 0.2, 0.4} {
		for _, unsigned := range []bool{false, true} {
			for _, k := range []int{0, 4} {
				opts := Opts{Unsigned: unsigned, TopK: k}
				want := mustJoin(t, Tiled{}, fp, fq, 0.8, cs, opts)
				got := mustJoin(t, NormPruned{}, fp, fq, 0.8, cs, opts)
				sameMatches(t, "normpruned cs<s", want.Matches, got.Matches)
			}
		}
	}
}

// TestNormPrunedSkipsWork asserts the Cauchy–Schwarz bound actually
// prunes on a norm-skewed workload (it is an optimisation, not just a
// correctness mirror).
func TestNormPrunedSkipsWork(t *testing.T) {
	rng := xrand.New(13)
	n, d := 4096, 16
	P := make([]vec.Vector, n)
	for i := range P {
		// Geometric norm decay: most rows cannot reach the threshold.
		P[i] = vec.Scaled(vec.Vector(rng.UnitVec(d)), math.Pow(0.999, float64(i)))
	}
	Q := make([]vec.Vector, 64)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(d))
	}
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	const s = 0.5
	pruned := mustJoin(t, NormPruned{}, fp, fq, s, s, Opts{})
	full := int64(n) * int64(len(Q))
	if pruned.Compared >= full/2 {
		t.Fatalf("normpruned compared %d of %d pairs — bound not pruning", pruned.Compared, full)
	}
	want := NaiveSigned(P, Q, s)
	sameMatches(t, "normpruned skewed", want.Matches, pruned.Matches)
}

// TestLSHEngineFlatVerification runs the flat LSH engine and checks
// every reported value against the store re-verification, plus recall
// against the exact join on a planted workload.
func TestLSHEngineFlatVerification(t *testing.T) {
	rng := xrand.New(3)
	hot := []int{0, 3, 7, 11}
	P, Q := corpus(rng, 200, 20, 16, 0.95, hot)
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	eng := LSH{
		NewFamily: func(d int) (lsh.Family, error) { return lsh.NewHyperplane(d) },
		K:         6, L: 24, Seed: 4,
	}
	const s, cs = 0.9, 0.45
	approx := mustJoin(t, eng, fp, fq, s, cs, Opts{})
	exact := NaiveSigned(P, Q, s)
	if r := Recall(exact, approx, s); r < 0.99 {
		t.Fatalf("recall %v too low", r)
	}
	for _, m := range approx.Matches {
		if got := fp.Dot(m.PIdx, fq.Row(m.QIdx)); got != m.Value {
			t.Fatalf("match %+v not verified through the store (dot %v)", m, got)
		}
	}
}

// TestSketchEngineFlat checks the flat sketch engine recovers a
// planted unsigned partner and reports store-verified values.
func TestSketchEngineFlat(t *testing.T) {
	rng := xrand.New(9)
	P, Q := corpus(rng, 128, 6, 16, 0.95, []int{2})
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	eng := Sketch{Kappa: 3, Copies: 9, Seed: 10}
	const s = 0.9
	cs := s * (1 / math.Pow(float64(len(P)), 1.0/3))
	res := mustJoin(t, eng, fp, fq, s, cs, Opts{Unsigned: true})
	if !res.MatchedQueries()[2] {
		t.Fatal("sketch engine missed the planted partner")
	}
	if _, err := eng.Join(fp, fq, s, cs, Opts{}); err == nil {
		t.Fatal("sketch engine must reject signed joins")
	}
}

// TestThresholdModeRejectsNaN pins the NaN contract across every
// threshold-mode scan: a pair whose dot product overflows to NaN
// (finite, JSON-ingestable inputs — Inf + (-Inf) inside the kernel)
// must not latch the argmax and shadow a later legitimate match, and
// k=0 and k=1 modes must agree.
func TestThresholdModeRejectsNaN(t *testing.T) {
	P := []vec.Vector{{1e308, 1e308}, {1, 0}}
	Q := []vec.Vector{{1e308, -1e308}}
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	want := []Match{{QIdx: 0, PIdx: 1, Value: 1e308}}
	for _, unsigned := range []bool{false, true} {
		naive := NaiveSigned(P, Q, 1)
		if unsigned {
			naive = NaiveUnsigned(P, Q, 1)
		}
		sameMatches(t, "naive NaN", want, naive.Matches)
		for _, e := range []Engine{Tiled{}, NormPruned{}} {
			got := mustJoin(t, e, fp, fq, 1, 1, Opts{Unsigned: unsigned})
			sameMatches(t, e.Name()+" NaN threshold", want, got.Matches)
			top := mustJoin(t, e, fp, fq, 1, 1, Opts{Unsigned: unsigned, TopK: 1})
			sameMatches(t, e.Name()+" NaN topk", want, top.Matches)
		}
	}
}

// TestNormPrunedPrebuiltView checks the Sorted fast path: a prebuilt
// view gives identical results, and a view of the wrong store shape is
// rejected instead of silently mis-answering.
func TestNormPrunedPrebuiltView(t *testing.T) {
	rng := xrand.New(23)
	P, Q := gridWorkload(rng, 300, 40, 8)
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	want := mustJoin(t, NormPruned{}, fp, fq, 0.5, 0.5, Opts{})
	got := mustJoin(t, NormPruned{Sorted: flat.NewNormSorted(fp)}, fp, fq, 0.5, 0.5, Opts{})
	sameMatches(t, "prebuilt view", want.Matches, got.Matches)
	other, _ := flat.FromVectors(P[:100])
	if _, err := (NormPruned{Sorted: flat.NewNormSorted(other)}).Join(fp, fq, 0.5, 0.5, Opts{}); err == nil {
		t.Fatal("mismatched prebuilt view must fail")
	}
}

// TestPreparerReuse pins the Prepare contract for every preparable
// engine: a prepared engine answers identically for its bound store,
// and still answers correctly (by rebuilding) for a different store.
func TestPreparerReuse(t *testing.T) {
	rng := xrand.New(29)
	P, Q := gridWorkload(rng, 200, 30, 8)
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)
	other, _ := flat.FromVectors(P[:50])
	engines := []Engine{
		NormPruned{},
		LSH{NewFamily: func(d int) (lsh.Family, error) { return lsh.NewHyperplane(d) }, K: 4, L: 8, Seed: 2},
		Sketch{Kappa: 2, Copies: 3, Seed: 2},
	}
	for _, e := range engines {
		opts := Opts{Unsigned: true}
		want := mustJoin(t, e, fp, fq, 0.5, 0.5, opts)
		prep, err := e.(Preparer).Prepare(fp)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", e.Name(), err)
		}
		got := mustJoin(t, prep, fp, fq, 0.5, 0.5, opts)
		sameMatches(t, e.Name()+" prepared", want.Matches, got.Matches)
		// A different P must fall back to a fresh build, not answer
		// from the stale state.
		wantOther := mustJoin(t, e, other, fq, 0.5, 0.5, opts)
		gotOther := mustJoin(t, prep, other, fq, 0.5, 0.5, opts)
		sameMatches(t, e.Name()+" prepared/other-store", wantOther.Matches, gotOther.Matches)
	}
}

// TestEngineValidation covers the shared operand checks.
func TestEngineValidation(t *testing.T) {
	fp, _ := flat.FromVectors([]vec.Vector{{1, 0}})
	fq, _ := flat.FromVectors([]vec.Vector{{1, 0, 0}})
	if _, err := (Tiled{}).Join(fp, fq, 0.5, 0.5, Opts{}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
	if _, err := (Tiled{}).Join(nil, fp, 0.5, 0.5, Opts{}); err == nil {
		t.Fatal("nil store must fail")
	}
	if _, err := (Tiled{}).Join(fp, fp, 0.5, 0.5, Opts{TopK: -1}); err == nil {
		t.Fatal("negative topk must fail")
	}
	if _, err := (Tiled{}).Join(fp, fp, -1, 0.5, Opts{}); err == nil {
		t.Fatal("negative s must fail")
	}
	if _, err := (Tiled{}).Join(fp, fp, 0.5, 0.9, Opts{}); err == nil {
		t.Fatal("cs > s must fail")
	}
	empty, _ := flat.New(2)
	if res, err := (Tiled{}).Join(empty, fp, 0.5, 0.5, Opts{}); err != nil || len(res.Matches) != 0 {
		t.Fatalf("empty P: res=%+v err=%v", res, err)
	}
}

// TestResultOrderingContract is the regression test pinning Result's
// documented ordering: pairs are (p, q) with PIdx the data side;
// matches are emitted by ascending QIdx (strictly, in threshold mode),
// and within one query top-k pairs descend by value with ties toward
// the smaller PIdx.
func TestResultOrderingContract(t *testing.T) {
	rng := xrand.New(17)
	P, Q := gridWorkload(rng, 120, 40, 8)
	fp, _ := flat.FromVectors(P)
	fq, _ := flat.FromVectors(Q)

	thr := mustJoin(t, Tiled{}, fp, fq, 0.2, 0.2, Opts{})
	for i := 1; i < len(thr.Matches); i++ {
		if thr.Matches[i].QIdx <= thr.Matches[i-1].QIdx {
			t.Fatalf("threshold mode QIdx not strictly increasing at %d: %+v", i, thr.Matches)
		}
	}
	// The reported pair is (p, q): PIdx must index P, QIdx must index Q
	// (P≠Q sizes make mixing the two up a range violation).
	for _, m := range thr.Matches {
		if m.PIdx < 0 || m.PIdx >= len(P) || m.QIdx < 0 || m.QIdx >= len(Q) {
			t.Fatalf("match %+v out of (p-index, q-index) range |P|=%d |Q|=%d", m, len(P), len(Q))
		}
	}

	topk := mustJoin(t, Tiled{}, fp, fq, 0.2, 0.2, Opts{TopK: 4})
	for i := 1; i < len(topk.Matches); i++ {
		a, b := topk.Matches[i-1], topk.Matches[i]
		switch {
		case b.QIdx < a.QIdx:
			t.Fatalf("topk QIdx decreased at %d", i)
		case b.QIdx == a.QIdx && b.Value > a.Value:
			t.Fatalf("topk value increased within query at %d", i)
		case b.QIdx == a.QIdx && b.Value == a.Value && b.PIdx < a.PIdx:
			t.Fatalf("topk tie not broken toward smaller PIdx at %d", i)
		}
	}

	got := thr.MatchedQueries()
	if len(got) != len(thr.Matches) {
		t.Fatalf("MatchedQueries size %d, want %d", len(got), len(thr.Matches))
	}
	for _, m := range thr.Matches {
		if !got[m.QIdx] {
			t.Fatalf("MatchedQueries missing query %d", m.QIdx)
		}
	}
}

// TestRecallPrecisionDefinedOnEmpty pins the defined-value contract:
// an empty exact result (or one certifying no query) yields recall 1.0
// and an empty approximate result yields precision 1.0 — never NaN.
func TestRecallPrecisionDefinedOnEmpty(t *testing.T) {
	approx := Result{Matches: []Match{{QIdx: 0, PIdx: 1, Value: 0.7}}}
	if r := Recall(Result{}, approx, 0.9); r != 1 || math.IsNaN(r) {
		t.Fatalf("Recall(empty exact) = %v, want 1.0", r)
	}
	// Exact matches exist but none certify the promise threshold.
	weak := Result{Matches: []Match{{QIdx: 0, PIdx: 2, Value: 0.5}}}
	if r := Recall(weak, approx, 0.9); r != 1 || math.IsNaN(r) {
		t.Fatalf("Recall(no promised queries) = %v, want 1.0", r)
	}
	if p := Precision(Result{}, 0.4, false); p != 1 || math.IsNaN(p) {
		t.Fatalf("Precision(empty) = %v, want 1.0", p)
	}
	if p := Precision(Result{}, 0.4, true); p != 1 || math.IsNaN(p) {
		t.Fatalf("Precision(empty unsigned) = %v, want 1.0", p)
	}
}

// TestMergePerQuery covers both merge modes over disjoint partials.
func TestMergePerQuery(t *testing.T) {
	parts := []Result{
		{Matches: []Match{{QIdx: 1, PIdx: 9, Value: 0.5}, {QIdx: 2, PIdx: 4, Value: 0.9}}, Compared: 10},
		{Matches: []Match{{QIdx: 1, PIdx: 3, Value: 0.8}, {QIdx: 1, PIdx: 5, Value: 0.8}}, Compared: 5},
		{},
	}
	best := MergePerQuery(parts, 0)
	wantBest := []Match{{QIdx: 1, PIdx: 3, Value: 0.8}, {QIdx: 2, PIdx: 4, Value: 0.9}}
	sameMatches(t, "merge threshold", wantBest, best.Matches)
	if best.Compared != 15 {
		t.Fatalf("merged Compared = %d, want 15", best.Compared)
	}
	top2 := MergePerQuery(parts, 2)
	wantTop2 := []Match{
		{QIdx: 1, PIdx: 3, Value: 0.8}, {QIdx: 1, PIdx: 5, Value: 0.8},
		{QIdx: 2, PIdx: 4, Value: 0.9},
	}
	sameMatches(t, "merge top2", wantTop2, top2.Matches)
	if m := MergePerQuery(nil, 3); len(m.Matches) != 0 || m.Compared != 0 {
		t.Fatalf("merge of nothing = %+v", m)
	}
}
