// Package corr implements the "outlier correlation" detection primitive
// behind the algebraic upper bounds the paper compares against
// (Valiant; Karppa–Kaski–Kohonen): given sets of ±1 vectors that are
// random except for one planted correlated pair, find that pair faster
// than the naive all-pairs scan.
//
// The paper's Table 1 cites these algorithms for the permissible ranges
// of unsigned {−1,1} join. Their full speed relies on fast matrix
// multiplication, which no stdlib-only implementation can reproduce;
// what we build is the *combinatorial core* — Valiant's expand-and-
// aggregate trick: sum random groups of g vectors on each side, detect
// the outlier inner product among the (n/g)² group pairs (signal ρ·d
// versus noise ±g·√d), then recurse inside the implicated groups. This
// yields a genuine n²/g² + g² work trade-off with the same detection
// logic, and DESIGN.md records the fast-MM substitution.
package corr

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/xrand"
)

// Instance is a planted-correlation instance over {−1,1}^d: all entries
// are uniform except P[PIdx] and Q[QIdx], which agree on ≈ (1+ρ)/2 of
// their coordinates (inner product ≈ ρ·d).
type Instance struct {
	D    int
	P, Q []*bitvec.Signs
	// PIdx, QIdx locate the planted pair.
	PIdx, QIdx int
	// Rho is the planted correlation.
	Rho float64
}

// NewInstance generates a planted instance. Requires 0 < rho ≤ 1.
func NewInstance(rng *xrand.RNG, nP, nQ, d int, rho float64) (*Instance, error) {
	if nP <= 0 || nQ <= 0 || d <= 0 {
		return nil, fmt.Errorf("corr: invalid shape nP=%d nQ=%d d=%d", nP, nQ, d)
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("corr: rho=%v out of (0,1]", rho)
	}
	in := &Instance{D: d, Rho: rho,
		P: make([]*bitvec.Signs, nP), Q: make([]*bitvec.Signs, nQ)}
	gen := func() *bitvec.Signs {
		s := bitvec.NewSigns(d)
		for i := 0; i < d; i++ {
			s.SetSign(i, rng.Sign())
		}
		return s
	}
	for i := range in.P {
		in.P[i] = gen()
	}
	for i := range in.Q {
		in.Q[i] = gen()
	}
	in.PIdx, in.QIdx = rng.Intn(nP), rng.Intn(nQ)
	// Correlate the planted query with the planted data vector.
	p := in.P[in.PIdx]
	q := bitvec.NewSigns(d)
	for i := 0; i < d; i++ {
		if rng.Float64() < (1+rho)/2 {
			q.SetSign(i, p.Sign(i))
		} else {
			q.SetSign(i, -p.Sign(i))
		}
	}
	in.Q[in.QIdx] = q
	return in, nil
}

// Result reports a detected pair and the work spent (inner-product
// evaluations of d-dimensional vectors, in group or raw units).
type Result struct {
	PIdx, QIdx int
	Value      int
	// Work counts scalar multiply-adds (d per vector inner product).
	Work int64
}

// Naive scans all pairs and returns the max-|dot| pair. Work = nP·nQ·d.
func Naive(in *Instance) Result {
	res := Result{PIdx: -1, QIdx: -1}
	best := -1
	for qi, q := range in.Q {
		for pi, p := range in.P {
			res.Work += int64(in.D)
			v := bitvec.DotSigns(p, q)
			if v < 0 {
				v = -v
			}
			if v > best {
				best = v
				res.PIdx, res.QIdx, res.Value = pi, qi, bitvec.DotSigns(p, q)
			}
		}
	}
	return res
}

// Aggregate runs the expand-and-aggregate detection with group size g:
// random groups are summed into integer vectors, the outlier group pair
// is found among (nP/g)·(nQ/g) aggregated products, and the planted
// pair is recovered by brute force inside the two implicated groups.
// The planted correlation must satisfy ρ·d ≳ g·√d·√ln(n²) for the
// outlier to dominate the aggregation noise.
func Aggregate(in *Instance, g int, rng *xrand.RNG) (Result, error) {
	if g <= 0 {
		return Result{}, fmt.Errorf("corr: group size %d must be positive", g)
	}
	if g > len(in.P) || g > len(in.Q) {
		return Result{}, fmt.Errorf("corr: group size %d exceeds set sizes", g)
	}
	res := Result{PIdx: -1, QIdx: -1}
	// Random permutations decouple group membership from planting.
	permP := rng.Perm(len(in.P))
	permQ := rng.Perm(len(in.Q))
	groupsP := groupSums(in.P, permP, g, in.D)
	groupsQ := groupSums(in.Q, permQ, g, in.D)
	// Outlier detection among aggregated inner products.
	bestAbs, bi, bj := -1, -1, -1
	for j, wq := range groupsQ {
		for i, wp := range groupsP {
			res.Work += int64(in.D)
			v := dotInts(wp, wq)
			if v < 0 {
				v = -v
			}
			if v > bestAbs {
				bestAbs, bi, bj = v, i, j
			}
		}
	}
	// Recurse: brute force inside the implicated groups.
	best := -1
	for _, qi := range groupMembers(permQ, bj, g) {
		for _, pi := range groupMembers(permP, bi, g) {
			res.Work += int64(in.D)
			v := bitvec.DotSigns(in.P[pi], in.Q[qi])
			av := v
			if av < 0 {
				av = -av
			}
			if av > best {
				best = av
				res.PIdx, res.QIdx, res.Value = pi, qi, v
			}
		}
	}
	return res, nil
}

// groupSums returns ⌈n/g⌉ integer sum-vectors of the permuted inputs.
func groupSums(vs []*bitvec.Signs, perm []int, g, d int) [][]int32 {
	numGroups := (len(vs) + g - 1) / g
	out := make([][]int32, numGroups)
	for gi := 0; gi < numGroups; gi++ {
		sum := make([]int32, d)
		for _, idx := range groupMembers(perm, gi, g) {
			v := vs[idx]
			for c := 0; c < d; c++ {
				sum[c] += int32(v.Sign(c))
			}
		}
		out[gi] = sum
	}
	return out
}

// groupMembers lists the original indices in group gi.
func groupMembers(perm []int, gi, g int) []int {
	lo := gi * g
	hi := lo + g
	if hi > len(perm) {
		hi = len(perm)
	}
	return perm[lo:hi]
}

func dotInts(a, b []int32) int {
	var s int64
	for i, v := range a {
		s += int64(v) * int64(b[i])
	}
	return int(s)
}

// MinSignal returns the correlation level ρ at which the aggregated
// outlier stands √(2·ln(pairs)) standard deviations above the noise —
// the threshold below which Aggregate is expected to fail.
func MinSignal(n, d, g int) float64 {
	pairs := float64(n/g) * float64(n/g)
	if pairs < 2 {
		pairs = 2
	}
	noise := float64(g) * math.Sqrt(float64(d)) * math.Sqrt(2*math.Log(pairs))
	return noise / float64(d)
}
