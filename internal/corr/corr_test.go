package corr

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/xrand"
)

func TestInstancePlantedCorrelation(t *testing.T) {
	rng := xrand.New(1)
	in, err := NewInstance(rng, 50, 50, 1024, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	dot := bitvec.DotSigns(in.P[in.PIdx], in.Q[in.QIdx])
	// Planted dot ≈ ρ·d = 614 with std √d ≈ 32.
	if float64(dot) < 0.45*1024 || float64(dot) > 0.75*1024 {
		t.Fatalf("planted dot %d far from rho·d", dot)
	}
	// Background pairs stay near 0: check a few.
	for pi := 0; pi < 5; pi++ {
		if pi == in.PIdx {
			continue
		}
		v := bitvec.DotSigns(in.P[pi], in.Q[in.QIdx])
		if math.Abs(float64(v)) > 5*math.Sqrt(1024) {
			t.Fatalf("background dot %d too large", v)
		}
	}
}

func TestInstanceValidation(t *testing.T) {
	rng := xrand.New(2)
	if _, err := NewInstance(rng, 0, 1, 8, 0.5); err == nil {
		t.Fatal("nP=0 must fail")
	}
	if _, err := NewInstance(rng, 1, 1, 8, 0); err == nil {
		t.Fatal("rho=0 must fail")
	}
	if _, err := NewInstance(rng, 1, 1, 8, 1.5); err == nil {
		t.Fatal("rho>1 must fail")
	}
}

func TestNaiveFindsPlanted(t *testing.T) {
	rng := xrand.New(3)
	in, err := NewInstance(rng, 40, 40, 512, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res := Naive(in)
	if res.PIdx != in.PIdx || res.QIdx != in.QIdx {
		t.Fatalf("naive found (%d,%d), want (%d,%d)", res.PIdx, res.QIdx, in.PIdx, in.QIdx)
	}
	if res.Work != int64(40*40*512) {
		t.Fatalf("work = %d", res.Work)
	}
}

func TestAggregateFindsPlanted(t *testing.T) {
	rng := xrand.New(4)
	const n, d, g = 64, 4096, 4
	// ρ must clear the aggregation noise threshold.
	rho := 2 * MinSignal(n, d, g)
	if rho > 1 {
		t.Fatalf("test parameters give infeasible rho %v", rho)
	}
	found := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		in, err := NewInstance(rng.Split(uint64(trial)), n, n, d, rho)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Aggregate(in, g, rng.Split(uint64(1000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if res.PIdx == in.PIdx && res.QIdx == in.QIdx {
			found++
		}
	}
	if found < 8 {
		t.Fatalf("aggregate recovered the planted pair in only %d/%d trials", found, trials)
	}
}

func TestAggregateSavesWork(t *testing.T) {
	rng := xrand.New(5)
	const n, d, g = 128, 4096, 4
	rho := 2 * MinSignal(n, d, g)
	in, err := NewInstance(rng, n, n, d, rho)
	if err != nil {
		t.Fatal(err)
	}
	naive := Naive(in)
	agg, err := Aggregate(in, g, rng)
	if err != nil {
		t.Fatal(err)
	}
	// (n/g)² + g² inner products vs n²: a g² ≈ 16x saving here.
	if agg.Work*4 > naive.Work {
		t.Fatalf("aggregation work %d not far below naive %d", agg.Work, naive.Work)
	}
}

func TestAggregateValidation(t *testing.T) {
	rng := xrand.New(6)
	in, _ := NewInstance(rng, 8, 8, 64, 0.9)
	if _, err := Aggregate(in, 0, rng); err == nil {
		t.Fatal("g=0 must fail")
	}
	if _, err := Aggregate(in, 9, rng); err == nil {
		t.Fatal("g>n must fail")
	}
}

func TestMinSignalMonotone(t *testing.T) {
	// Bigger groups need stronger signal; more dimensions need less.
	if MinSignal(64, 1024, 8) <= MinSignal(64, 1024, 2) {
		t.Fatal("threshold must grow with g")
	}
	if MinSignal(64, 4096, 4) >= MinSignal(64, 256, 4) {
		t.Fatal("threshold must shrink with d")
	}
}

func BenchmarkNaive_n64_d1024(b *testing.B) {
	rng := xrand.New(7)
	in, err := NewInstance(rng, 64, 64, 1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Naive(in)
	}
}

func BenchmarkAggregate_n64_d1024_g4(b *testing.B) {
	rng := xrand.New(8)
	in, err := NewInstance(rng, 64, 64, 1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(in, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}
