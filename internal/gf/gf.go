// Package gf implements arithmetic in prime fields GF(p) for the
// Reed–Solomon code construction behind the paper's §4.2 symmetric LSH
// (explicit ε-incoherent vector collections, Nelson–Nguyen–Woodruff).
//
// Elements are represented as uint64 values in [0, p). Field moduli are
// restricted to p < 2^31 so products fit in uint64 without overflow.
package gf

import "fmt"

// MaxPrime is the largest supported field modulus (exclusive bound keeps
// products inside uint64).
const MaxPrime = 1 << 31

// Field is a prime field GF(p).
type Field struct {
	P uint64
}

// NewField returns GF(p). It validates that p is prime and within range.
func NewField(p uint64) (*Field, error) {
	if p < 2 || p >= MaxPrime {
		return nil, fmt.Errorf("gf: modulus %d out of range [2, 2^31)", p)
	}
	if !IsPrime(p) {
		return nil, fmt.Errorf("gf: modulus %d is not prime", p)
	}
	return &Field{P: p}, nil
}

// IsPrime reports whether n is prime (deterministic trial division; field
// moduli are small so this is fast and dependency-free).
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	if n%3 == 0 {
		return n == 3
	}
	for i := uint64(5); i*i <= n; i += 6 {
		if n%i == 0 || n%(i+2) == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime ≥ n. Panics if it would exceed
// MaxPrime.
func NextPrime(n uint64) uint64 {
	if n < 2 {
		return 2
	}
	for p := n; p < MaxPrime; p++ {
		if IsPrime(p) {
			return p
		}
	}
	panic(fmt.Sprintf("gf: no prime in [%d, 2^31)", n))
}

// Add returns (a + b) mod p.
func (f *Field) Add(a, b uint64) uint64 {
	s := a + b
	if s >= f.P {
		s -= f.P
	}
	return s
}

// Sub returns (a − b) mod p.
func (f *Field) Sub(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + f.P - b
}

// Mul returns (a · b) mod p.
func (f *Field) Mul(a, b uint64) uint64 { return a * b % f.P }

// Neg returns (−a) mod p.
func (f *Field) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.P - a
}

// Pow returns a^e mod p by square-and-multiply.
func (f *Field) Pow(a, e uint64) uint64 {
	a %= f.P
	var r uint64 = 1
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, a)
		}
		a = f.Mul(a, a)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a, using Fermat's little
// theorem. Panics on a ≡ 0.
func (f *Field) Inv(a uint64) uint64 {
	if a%f.P == 0 {
		panic("gf: inverse of zero")
	}
	return f.Pow(a, f.P-2)
}

// EvalPoly evaluates the polynomial with coefficients coeffs (coeffs[i]
// is the coefficient of x^i) at point x, by Horner's rule. Coefficients
// may be arbitrary uint64 values; they are reduced mod p.
func (f *Field) EvalPoly(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	x %= f.P
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), coeffs[i]%f.P)
	}
	return acc
}
