package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 101, 7919, 104729}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Fatalf("%d should be prime", p)
		}
	}
	composites := []uint64{0, 1, 4, 6, 9, 15, 7917, 104730, 121}
	for _, c := range composites {
		if IsPrime(c) {
			t.Fatalf("%d should not be prime", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[uint64]uint64{0: 2, 2: 2, 3: 3, 4: 5, 14: 17, 100: 101}
	for n, want := range cases {
		if got := NextPrime(n); got != want {
			t.Fatalf("NextPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(4); err == nil {
		t.Fatal("NewField(4) must fail")
	}
	if _, err := NewField(1); err == nil {
		t.Fatal("NewField(1) must fail")
	}
	if _, err := NewField(1 << 32); err == nil {
		t.Fatal("NewField over range must fail")
	}
	f, err := NewField(101)
	if err != nil || f.P != 101 {
		t.Fatalf("NewField(101) = %v, %v", f, err)
	}
}

func TestFieldAxioms(t *testing.T) {
	f, _ := NewField(10007)
	check := func(a, b uint64) bool {
		a %= f.P
		b %= f.P
		if f.Add(a, b) != (a+b)%f.P {
			return false
		}
		if f.Mul(a, b) != a*b%f.P {
			return false
		}
		if f.Add(a, f.Neg(a)) != 0 {
			return false
		}
		if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInv(t *testing.T) {
	f, _ := NewField(10007)
	for a := uint64(1); a < 200; a++ {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("Inv(%d) wrong", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f, _ := NewField(7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Inv(0)
}

func TestPow(t *testing.T) {
	f, _ := NewField(13)
	if f.Pow(2, 0) != 1 || f.Pow(2, 1) != 2 || f.Pow(2, 12) != 1 {
		t.Fatal("Pow basic identities failed (Fermat)")
	}
	if f.Pow(3, 5) != 243%13 {
		t.Fatalf("Pow(3,5) = %d", f.Pow(3, 5))
	}
}

func TestEvalPoly(t *testing.T) {
	f, _ := NewField(101)
	// p(x) = 3 + 2x + x²
	coeffs := []uint64{3, 2, 1}
	for x := uint64(0); x < 10; x++ {
		want := (3 + 2*x + x*x) % 101
		if got := f.EvalPoly(coeffs, x); got != want {
			t.Fatalf("EvalPoly at %d = %d, want %d", x, got, want)
		}
	}
	if f.EvalPoly(nil, 5) != 0 {
		t.Fatal("empty polynomial must evaluate to 0")
	}
}

func TestEvalPolyDegreeBound(t *testing.T) {
	// Two distinct degree-<K polynomials agree on at most K−1 points —
	// the algebraic fact behind RS incoherence.
	f, _ := NewField(31)
	a := []uint64{1, 2, 3} // degree < 3
	b := []uint64{4, 5, 6}
	agree := 0
	for x := uint64(0); x < f.P; x++ {
		if f.EvalPoly(a, x) == f.EvalPoly(b, x) {
			agree++
		}
	}
	if agree > 2 {
		t.Fatalf("distinct cubics agree on %d > 2 points", agree)
	}
}
