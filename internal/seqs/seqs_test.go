package seqs

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/lsh"
	"repro/internal/vec"
)

const tol = 1e-9

func TestCase1_1D(t *testing.T) {
	st, err := Case1_1D(0.01, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() < 5 {
		t.Fatalf("sequence too short: %d", st.Len())
	}
	if err := st.Verify(tol); err != nil {
		t.Fatal(err)
	}
	if !st.Unsigned {
		t.Fatal("case 1 certifies unsigned too")
	}
}

func TestCase1_1DLengthScales(t *testing.T) {
	// Length is Θ(log_{1/c}(U/s)): growing U must lengthen the staircase.
	a, err := Case1_1D(0.01, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Case1_1D(0.01, 0.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() <= a.Len() {
		t.Fatalf("length must grow with U: %d then %d", a.Len(), b.Len())
	}
}

func TestCase1MultiD(t *testing.T) {
	for _, d := range []int{2, 4, 6, 10} {
		u := 16.0
		s := u / (2 * math.Sqrt(float64(d))) / 2
		st, err := Case1(d, s, 0.5, u)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := st.Verify(tol); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestCase1LengthGrowsWithD(t *testing.T) {
	u := 64.0
	s := 0.05
	st2, err := Case1(2, s, 0.5, u)
	if err != nil {
		t.Fatal(err)
	}
	st8, err := Case1(8, s, 0.5, u)
	if err != nil {
		t.Fatal(err)
	}
	if st8.Len() <= st2.Len() {
		t.Fatalf("length must grow with d: %d then %d", st2.Len(), st8.Len())
	}
}

func TestCase1Validation(t *testing.T) {
	if _, err := Case1(3, 0.1, 0.5, 8); err == nil {
		t.Fatal("odd d must fail")
	}
	if _, err := Case1(4, 10, 0.5, 8); err == nil {
		t.Fatal("s too large must fail")
	}
	if _, err := Case1_1D(0.1, 1.5, 8); err == nil {
		t.Fatal("c out of range must fail")
	}
	if _, err := Case1_1D(5, 0.5, 8); err == nil {
		t.Fatal("s > cU must fail")
	}
}

func TestCase2(t *testing.T) {
	for _, d := range []int{2, 4, 8} {
		u := 32.0
		s := u / (2 * float64(d)) / 2
		st, err := Case2(d, s, 0.5, u)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if st.Unsigned {
			t.Fatal("case 2 must be signed-only")
		}
		if err := st.Verify(tol); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestCase2HasNegativeProducts(t *testing.T) {
	// The construction produces large negative dots below the diagonal,
	// which is why it cannot serve the unsigned case.
	st, err := Case2(2, 0.5, 0.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	n := st.Len()
	for i := 0; i < n && !found; i++ {
		for j := 0; j < i; j++ {
			if vec.Dot(st.Q[i], st.P[j]) < -st.S {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("expected strongly negative below-diagonal products")
	}
}

func TestCase2LongerThanCase1(t *testing.T) {
	// For the same parameters, case 2 sequences are asymptotically longer
	// (√(U/s) vs log(U/s)).
	u := 512.0
	s := 0.25
	c := 0.5
	st1, err := Case1(2, s, c, u)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Case2(2, s, c, u)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() <= st1.Len() {
		t.Fatalf("case2 (%d) should beat case1 (%d) at large U/s", st2.Len(), st1.Len())
	}
}

func TestCase2Validation(t *testing.T) {
	if _, err := Case2(2, 10, 0.5, 8); err == nil {
		t.Fatal("s > U/(2d) must fail")
	}
	if _, err := Case2(3, 0.1, 0.5, 8); err == nil {
		t.Fatal("odd d must fail")
	}
}

func TestCase3Orthonormal(t *testing.T) {
	st, err := Case3(0.25, 0.5, 128, FamilyOrthonormal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() < 3 {
		t.Fatalf("length %d too short", st.Len())
	}
	if err := st.Verify(tol); err != nil {
		t.Fatal(err)
	}
}

func TestCase3ReedSolomon(t *testing.T) {
	st, err := Case3(0.5, 0.5, 72, FamilyReedSolomon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(tol); err != nil {
		t.Fatal(err)
	}
}

func TestCase3Gaussian(t *testing.T) {
	st, err := Case3(0.5, 0.9, 72, FamilyGaussian, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Gaussian incoherence is probabilistic; allow a loose tolerance on
	// the thresholds by widening tol.
	if err := st.Verify(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestCase3LengthScalesWithU(t *testing.T) {
	small, err := Case3(0.25, 0.5, 32, FamilyOrthonormal, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Case3(0.25, 0.5, 512, FamilyOrthonormal, 4)
	if err != nil {
		t.Fatal(err)
	}
	if big.Len() <= small.Len() {
		t.Fatalf("length must grow with U: %d then %d", small.Len(), big.Len())
	}
}

func TestCase3Validation(t *testing.T) {
	if _, err := Case3(2, 0.5, 8, FamilyOrthonormal, 1); err == nil {
		t.Fatal("s > U/8 must fail")
	}
	if _, err := Case3(0.1, 1.2, 8, FamilyOrthonormal, 1); err == nil {
		t.Fatal("c out of range must fail")
	}
	if _, err := Case3(0.1, 0.5, 8, Case3Family(99), 1); err == nil {
		t.Fatal("unknown family must fail")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	st := &Staircase{
		P: []vec.Vector{{0.5}, {0.5}},
		Q: []vec.Vector{{1}, {1}},
		S: 0.6, CS: 0.3, U: 1, Unsigned: true,
	}
	// Q[1]·P[0] = 0.5 > cs = 0.3 → must fail.
	if err := st.Verify(0); err == nil {
		t.Fatal("Verify must catch staircase violations")
	}
	bad := &Staircase{P: []vec.Vector{{2}}, Q: []vec.Vector{{1}}, S: 0.5, CS: 0.1, U: 1}
	if err := bad.Verify(0); err == nil {
		t.Fatal("Verify must catch norm violations")
	}
}

// The Theorem 3 / Lemma 4 integration: a concrete ALSH family measured
// on a hard staircase must exhibit a gap below the Lemma 4 bound.
func TestLemma4GapOnConcreteALSH(t *testing.T) {
	const u = 512.0
	st, err := Case1_1D(0.005, 0.45, u)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate to the largest 2^l−1 prefix for the grid bound.
	n := st.Len()
	gsize := 1
	for gsize*2-1 <= n {
		gsize *= 2
	}
	n = gsize - 1
	if n < 3 {
		t.Skip("staircase too short for the grid bound")
	}
	P, Q := st.P[:n], st.Q[:n]
	// SIMPLE-ALSH: embed into the unit sphere and hash by hyperplane.
	inner, _ := lsh.NewHyperplane(3)
	dataMap := func(p vec.Vector) vec.Vector {
		return vec.Vector{p[0], math.Sqrt(1 - p[0]*p[0]), 0}
	}
	queryMap := func(q vec.Vector) vec.Vector {
		v := q[0] / u
		return vec.Vector{v, 0, math.Sqrt(1 - v*v)}
	}
	fam, err := lsh.NewAsymmetric("simple-alsh", lsh.MapPair{Data: dataMap, Query: queryMap}, inner)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := grid.EmpiricalGap(fam, P, Q, 3000, 5)
	gap := p1 - p2
	if bound := grid.GapBound(n); gap > bound {
		t.Fatalf("empirical gap %v exceeds Lemma 4 bound %v (n=%d)", gap, bound, n)
	}
}
