// Package seqs constructs the "staircase" hard sequences of Theorem 3
// in Ahle et al.: sequences of data vectors P (unit ball) and query
// vectors Q (ball of radius U) with qᵢᵀpⱼ ≥ s exactly when j ≥ i and
// qᵢᵀpⱼ ≤ cs otherwise. Fed into Lemma 4 (package grid) they upper
// bound the gap P1 − P2 of any (asymmetric) LSH for inner product
// similarity, for any fixed dimension and query radius.
//
// Three constructions are provided, matching the theorem's three cases:
//
//	Case 1 — geometric sequences, length Θ(d·log_{1/c}(U/s)), valid for
//	         signed and unsigned IPS (all inner products nonnegative).
//	Case 2 — affine 2-D plane sequences, length Θ(d·√(U/(s(1−c)))),
//	         signed IPS only (large negative products appear).
//	Case 3 — binary-tree sequences over an ε-incoherent family, length
//	         2^⌊√(U/(8s))⌋, signed and unsigned.
package seqs

import (
	"fmt"
	"math"

	"repro/internal/codes"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Staircase is a hard sequence pair with its certified thresholds.
type Staircase struct {
	// P are data vectors (‖p‖ ≤ 1), Q query vectors (‖q‖ ≤ U); both have
	// the same length n and satisfy the staircase property with
	// thresholds S (hit) and CS (miss).
	P, Q []vec.Vector
	S    float64
	CS   float64
	U    float64
	// Unsigned records whether the construction also certifies the
	// unsigned staircase (|qᵀp| bounds); case 2 does not.
	Unsigned bool
}

// Len returns the sequence length n.
func (st *Staircase) Len() int { return len(st.P) }

// Verify checks the staircase property and the norm constraints,
// returning a descriptive error on the first violation. tol absorbs
// floating-point fuzz.
func (st *Staircase) Verify(tol float64) error {
	n := st.Len()
	if n == 0 || len(st.Q) != n {
		return fmt.Errorf("seqs: inconsistent lengths |P|=%d |Q|=%d", n, len(st.Q))
	}
	for j, p := range st.P {
		if vec.Norm(p) > 1+tol {
			return fmt.Errorf("seqs: ‖P[%d]‖ = %v exceeds unit ball", j, vec.Norm(p))
		}
	}
	for i, q := range st.Q {
		if vec.Norm(q) > st.U+tol {
			return fmt.Errorf("seqs: ‖Q[%d]‖ = %v exceeds radius %v", i, vec.Norm(q), st.U)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dot := vec.Dot(st.Q[i], st.P[j])
			val := dot
			if st.Unsigned && val < 0 {
				val = -val
			}
			if j >= i {
				if dot < st.S-tol {
					return fmt.Errorf("seqs: node (%d,%d): dot %v < s %v", i, j, dot, st.S)
				}
			} else if val > st.CS+tol {
				return fmt.Errorf("seqs: node (%d,%d): value %v > cs %v", i, j, val, st.CS)
			}
		}
	}
	return nil
}

// Case1Len returns the per-block length m = ⌊log_{1/c}(U/s)⌋ + 1 of the
// geometric construction, after trimming the over-norm prefix.
func case1Block(s, c, u float64) (qs, ps []float64, err error) {
	if !(c > 0 && c < 1) {
		return nil, nil, fmt.Errorf("seqs: c=%v out of (0,1)", c)
	}
	if s <= 0 || s > c*u {
		return nil, nil, fmt.Errorf("seqs: need 0 < s <= c·U, got s=%v U=%v", s, u)
	}
	m := int(math.Floor(math.Log(u/s)/math.Log(1/c))) + 1
	for i := 0; i < m; i++ {
		qv := u * math.Pow(c, float64(i))
		pv := s / qv // s/(U·c^i)
		if pv > 1 || qv > u {
			continue // trim entries breaking the ball constraints
		}
		qs = append(qs, qv)
		ps = append(ps, pv)
	}
	if len(qs) == 0 {
		return nil, nil, fmt.Errorf("seqs: empty case-1 block for s=%v c=%v U=%v", s, c, u)
	}
	return qs, ps, nil
}

// Case1_1D builds the one-dimensional geometric staircase of Theorem 3
// case 1: q_i = U·c^i, p_j = s/(U·c^j), giving qᵢᵀpⱼ = s·c^{i−j}.
func Case1_1D(s, c, u float64) (*Staircase, error) {
	qs, ps, err := case1Block(s, c, u)
	if err != nil {
		return nil, err
	}
	st := &Staircase{S: s, CS: c * s, U: u, Unsigned: true}
	for k := range qs {
		st.Q = append(st.Q, vec.Vector{qs[k]})
		st.P = append(st.P, vec.Vector{ps[k]})
	}
	return st, nil
}

// Case1 builds the d-dimensional case-1 staircase (d even, d ≥ 2): the
// 1-D block is planted on d/2 orthogonal coordinate pairs, with 2s
// markers on later odd coordinates of queries and a 1/2 marker on the
// previous odd coordinate of data vectors, so that cross-block products
// are 0 (earlier blocks) or exactly s (later blocks). Sequence length is
// (d/2)·m. Requires s ≤ U/(2√d) for the norm constraints.
func Case1(d int, s, c, u float64) (*Staircase, error) {
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("seqs: Case1 needs even d >= 2, got %d", d)
	}
	if s > u/(2*math.Sqrt(float64(d))) {
		return nil, fmt.Errorf("seqs: Case1 needs s <= U/(2√d), got s=%v U=%v d=%d", s, u, d)
	}
	qs, ps, err := case1Block(s, c, u)
	if err != nil {
		return nil, err
	}
	// Trim entries whose full d-dimensional query would leave the U-ball:
	// ‖q_{i,k}‖² = (U·c^i)² + (d/2)·(2s)² must be ≤ U².
	dHalf := d / 2
	margin := float64(dHalf) * 4 * s * s
	st := &Staircase{S: s, CS: c * s, U: u, Unsigned: true}
	for k := 0; k < dHalf; k++ {
		for idx := range qs {
			if qs[idx]*qs[idx]+margin > u*u {
				continue
			}
			q := vec.New(d)
			q[2*k] = qs[idx]
			for t := k; t < dHalf; t++ {
				q[2*t+1] = 2 * s
			}
			p := vec.New(d)
			p[2*k] = ps[idx]
			if k > 0 {
				p[2*k-1] = 0.5
			}
			if vec.Norm(p) > 1 {
				continue
			}
			st.Q = append(st.Q, q)
			st.P = append(st.P, p)
		}
	}
	if st.Len() == 0 {
		return nil, fmt.Errorf("seqs: Case1 produced an empty sequence (s too large?)")
	}
	return st, nil
}

// Case2 builds the signed-only affine staircase of Theorem 3 case 2 on
// d/2 orthogonal planes: on each plane,
// q_i = (√(sU)·(1−(1−c)·i), √(sU(1−c))), p_j = (√(s/U), j·√(s(1−c)/U)),
// giving qᵢᵀpⱼ = s + s(1−c)(j−i). Cross-plane products are 0 (earlier)
// or s (later) via √(sU) markers. Length Θ(d·√(U/(s(1−c)))). Products
// below the diagonal go strongly negative, so the staircase certifies
// signed IPS only. Requires s ≤ U/(2d).
func Case2(d int, s, c, u float64) (*Staircase, error) {
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("seqs: Case2 needs even d >= 2, got %d", d)
	}
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("seqs: c=%v out of (0,1)", c)
	}
	if s <= 0 || s > u/(2*float64(d)) {
		return nil, fmt.Errorf("seqs: Case2 needs 0 < s <= U/(2d), got s=%v U=%v d=%d", s, u, d)
	}
	dHalf := d / 2
	// Block length limited by ‖p_j‖ ≤ 1 and ‖q_i‖ ≤ U.
	mData := int(math.Floor(math.Sqrt((1 - s/u) / (s * (1 - c) / u))))
	mQuery := int(math.Floor((1 + math.Sqrt(u/s-1-float64(dHalf))) / (1 - c)))
	m := mData
	if mQuery < m {
		m = mQuery
	}
	if m < 1 {
		return nil, fmt.Errorf("seqs: Case2 block empty for s=%v c=%v U=%v", s, c, u)
	}
	sqSU := math.Sqrt(s * u)
	st := &Staircase{S: s, CS: c * s, U: u, Unsigned: false}
	for k := 0; k < dHalf; k++ {
		for i := 0; i < m; i++ {
			q := vec.New(d)
			q[2*k] = sqSU * (1 - (1-c)*float64(i))
			q[2*k+1] = math.Sqrt(s * u * (1 - c))
			for t := k + 1; t < dHalf; t++ {
				q[2*t] = sqSU
			}
			p := vec.New(d)
			p[2*k] = math.Sqrt(s / u)
			p[2*k+1] = float64(i) * math.Sqrt(s*(1-c)/u)
			if vec.Norm(p) > 1 || vec.Norm(q) > u {
				continue
			}
			st.Q = append(st.Q, q)
			st.P = append(st.P, p)
		}
	}
	if st.Len() == 0 {
		return nil, fmt.Errorf("seqs: Case2 produced an empty sequence")
	}
	return st, nil
}

// MaxCase3Levels caps the binary-tree depth of Case3 (sequence length
// 2^levels − 1): the dense orthonormal family needs Θ(n²) memory, so
// unbounded U would otherwise explode the build.
const MaxCase3Levels = 8

// Case3Family selects the incoherent vector family used by Case3.
type Case3Family int

const (
	// FamilyOrthonormal uses exact standard basis vectors (ε = 0,
	// dimension 2n−1): the idealised construction, useful to isolate the
	// combinatorics from incoherence error.
	FamilyOrthonormal Case3Family = iota
	// FamilyReedSolomon uses the deterministic RS incoherent family of
	// [38] with ε = c/(2·log²n) — the paper's JL step made explicit.
	FamilyReedSolomon
	// FamilyGaussian uses random unit vectors at the JL dimension.
	FamilyGaussian
)

// Case3 builds the binary-tree staircase of Theorem 3 case 3 with
// L = ⌊√(U/(8s))⌋ levels (sequence length n = 2^L):
//
//	q_i = √(2sU)·Σ_{ℓ: b_{i,ℓ}=0} z_{(i_0…i_{ℓ−1}, 1)}
//	p_j = √(2s/U)·Σ_{ℓ: b_{j,ℓ}=1} z_{(j_0…j_{ℓ−1}, 1)}
//
// where z indexes an ε-incoherent family over the tree of bit prefixes.
// A shared (prefix, 1) node exists exactly when j ≥ i, contributing 2s;
// all other terms are incoherence noise ≤ 2s·ε·log²n ≤ cs.
func Case3(s, c, u float64, family Case3Family, seed uint64) (*Staircase, error) {
	if !(c > 0 && c < 1) {
		return nil, fmt.Errorf("seqs: c=%v out of (0,1)", c)
	}
	if s <= 0 || s > u/8 {
		return nil, fmt.Errorf("seqs: Case3 needs 0 < s <= U/8, got s=%v U=%v", s, u)
	}
	levels := int(math.Floor(math.Sqrt(u / (8 * s))))
	if levels < 1 {
		return nil, fmt.Errorf("seqs: Case3 has no levels for s=%v U=%v", s, u)
	}
	if levels > MaxCase3Levels {
		levels = MaxCase3Levels
	}
	n := 1 << uint(levels)
	// Tree nodes: bit prefixes of length 1..levels, heap-numbered
	// (id of prefix value v at length l is 2^l + v). Only (prefix, 1)
	// nodes are ever referenced but we index the full space for clarity.
	numNodes := 1 << uint(levels+1)
	eps := c / (2 * float64(levels*levels))
	getZ, dim, err := case3FamilyVectors(family, numNodes, eps, seed)
	if err != nil {
		return nil, err
	}
	qScale := math.Sqrt(2 * s * u)
	pScale := math.Sqrt(2 * s / u)
	qs := make([]vec.Vector, n)
	ps := make([]vec.Vector, n)
	for idx := 0; idx < n; idx++ {
		q := vec.New(dim)
		p := vec.New(dim)
		for l := 1; l <= levels; l++ {
			bit := (idx >> uint(levels-l)) & 1
			// Heap id of the length-l prefix of idx with last bit forced to 1.
			withOne := (1 << uint(l)) | (idx>>uint(levels-l) | 1)
			if bit == 0 {
				// The query walks the sibling path (prefix, 1).
				vec.Axpy(qScale, getZ(withOne), q)
			} else {
				// The data vector walks its own path (its bit is already 1).
				vec.Axpy(pScale, getZ(withOne), p)
			}
		}
		qs[idx] = q
		ps[idx] = p
	}
	// The raw construction gives qᵢᵀpⱼ ≈ 2s exactly when j > i (strictly):
	// the witness level needs b_{j,ℓ} = 1 > b_{i,ℓ} = 0. Shifting the data
	// sequence by one converts this to the paper's j ≥ i convention with
	// sequence length n−1.
	st := &Staircase{S: s, CS: c * s, U: u, Unsigned: true,
		Q: qs[:n-1], P: ps[1:]}
	if st.Len() == 0 {
		return nil, fmt.Errorf("seqs: Case3 produced an empty sequence")
	}
	return st, nil
}

// case3FamilyVectors returns an accessor for the z vectors, their
// ambient dimension, and an error.
func case3FamilyVectors(family Case3Family, numNodes int, eps float64, seed uint64) (func(int) vec.Vector, int, error) {
	switch family {
	case FamilyOrthonormal:
		dim := numNodes
		cache := make(map[int]vec.Vector)
		return func(id int) vec.Vector {
			v, ok := cache[id]
			if !ok {
				v = vec.New(dim)
				v[id] = 1
				cache[id] = v
			}
			return v
		}, dim, nil
	case FamilyReedSolomon:
		fam, err := codes.NewIncoherent(uint64(numNodes), eps)
		if err != nil {
			return nil, 0, err
		}
		dim := fam.Dim()
		cache := make(map[int]vec.Vector)
		return func(id int) vec.Vector {
			v, ok := cache[id]
			if !ok {
				v = fam.Vector(uint64(id)).Dense()
				cache[id] = v
			}
			return v
		}, dim, nil
	case FamilyGaussian:
		dim := codes.JLDim(numNodes, eps)
		g := codes.NewGaussianFamily(xrand.New(seed), numNodes, dim)
		return func(id int) vec.Vector { return g.Vecs[id] }, dim, nil
	}
	return nil, 0, fmt.Errorf("seqs: unknown family %d", family)
}
