// Package codes builds explicit ε-incoherent collections of unit vectors
// from Reed–Solomon codes, the construction of Nelson, Nguyễn and
// Woodruff cited by §4.2 of Ahle et al. for the symmetric-LSH reduction.
//
// A collection {v_0, …, v_{N−1}} ⊂ R^D of unit vectors is ε-incoherent
// when |v_iᵀv_j| ≤ ε for all i ≠ j. The RS construction is strongly
// explicit: v_u is computable from the index u alone, which is exactly
// what the paper's reduction f(p) = (p, √(1−‖p‖²)·v_p) needs — the
// auxiliary vector is a deterministic function of the point's bit
// representation.
//
// Construction: fix a prime p and message length K with p^K ≥ N. The
// index u is written in base p as a degree-<K polynomial over GF(p); its
// codeword is the evaluation at all p field points. The vector v_u lives
// in dimension p² (p blocks of size p), with block i holding 1/√p at
// position c_u(i). Two distinct codewords agree on at most K−1 points,
// so v_uᵀv_w ≤ (K−1)/p ≤ ε.
package codes

import (
	"fmt"
	"math"

	"repro/internal/gf"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// SparseUnit is a unit vector with a single nonzero per block, the
// natural output shape of the RS construction.
type SparseUnit struct {
	// Positions[i] is the index of the nonzero inside block i; the global
	// coordinate is i·BlockSize + Positions[i].
	Positions []int
	// BlockSize is the size of each block (= number of field points).
	BlockSize int
	// Scale is the value of every nonzero entry (1/√blocks).
	Scale float64
}

// Dim returns the ambient dimension blocks × BlockSize.
func (s *SparseUnit) Dim() int { return len(s.Positions) * s.BlockSize }

// Dense materialises the vector in R^Dim.
func (s *SparseUnit) Dense() vec.Vector {
	out := vec.New(s.Dim())
	for i, p := range s.Positions {
		out[i*s.BlockSize+p] = s.Scale
	}
	return out
}

// Dot returns the inner product of two sparse units from the same family.
func (s *SparseUnit) Dot(t *SparseUnit) float64 {
	if len(s.Positions) != len(t.Positions) || s.BlockSize != t.BlockSize {
		panic("codes: Dot across incompatible families")
	}
	agree := 0
	for i, p := range s.Positions {
		if p == t.Positions[i] {
			agree++
		}
	}
	return float64(agree) * s.Scale * t.Scale
}

// Incoherent is an explicit ε-incoherent family of N unit vectors built
// from a Reed–Solomon code over GF(p).
type Incoherent struct {
	Field *gf.Field
	// K is the message length (codewords are evaluations of degree-<K
	// polynomials); incoherence is (K−1)/p.
	K int
	// N is the number of addressable vectors (≤ p^K).
	N     uint64
	scale float64
}

// NewIncoherent returns a family of at least n unit vectors with
// pairwise |v_iᵀv_j| ≤ eps. It chooses the prime p and message length K
// minimising the ambient dimension p². Returns an error for invalid
// parameters or if the search space is exhausted.
func NewIncoherent(n uint64, eps float64) (*Incoherent, error) {
	if n < 2 {
		return nil, fmt.Errorf("codes: need at least 2 vectors, got %d", n)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("codes: eps %v out of (0,1)", eps)
	}
	bestP := uint64(0)
	bestK := 0
	for k := 2; k <= 64; k++ {
		// p must satisfy p ≥ (k−1)/eps (incoherence) and p^k ≥ n (capacity).
		minP := uint64(math.Ceil(float64(k-1) / eps))
		if capP := uint64(math.Ceil(math.Pow(float64(n), 1/float64(k)))); capP > minP {
			minP = capP
		}
		if minP < 2 {
			minP = 2
		}
		if minP >= gf.MaxPrime {
			continue
		}
		p := gf.NextPrime(minP)
		// Guard against pow overflow while verifying capacity.
		if !powAtLeast(p, k, n) {
			p = gf.NextPrime(p + 1)
			if !powAtLeast(p, k, n) {
				continue
			}
		}
		if float64(k-1)/float64(p) > eps {
			continue
		}
		if bestP == 0 || p < bestP {
			bestP, bestK = p, k
		}
	}
	if bestP == 0 {
		return nil, fmt.Errorf("codes: no RS parameters for n=%d eps=%v", n, eps)
	}
	f, err := gf.NewField(bestP)
	if err != nil {
		return nil, err
	}
	return &Incoherent{Field: f, K: bestK, N: n, scale: 1 / math.Sqrt(float64(bestP))}, nil
}

// powAtLeast reports whether p^k ≥ n without overflowing.
func powAtLeast(p uint64, k int, n uint64) bool {
	acc := uint64(1)
	for i := 0; i < k; i++ {
		if acc >= (n+p-1)/p+1 || acc > math.MaxUint64/p {
			return true
		}
		acc *= p
		if acc >= n {
			return true
		}
	}
	return acc >= n
}

// Eps returns the certified incoherence bound (K−1)/p.
func (c *Incoherent) Eps() float64 { return float64(c.K-1) / float64(c.Field.P) }

// Dim returns the ambient dimension p².
func (c *Incoherent) Dim() int { return int(c.Field.P) * int(c.Field.P) }

// Vector returns the u-th unit vector of the family. Panics if u ≥ N.
func (c *Incoherent) Vector(u uint64) *SparseUnit {
	if u >= c.N {
		panic(fmt.Sprintf("codes: index %d out of range [0,%d)", u, c.N))
	}
	// Base-p digits of u are the polynomial coefficients.
	coeffs := make([]uint64, c.K)
	for i := 0; i < c.K; i++ {
		coeffs[i] = u % c.Field.P
		u /= c.Field.P
	}
	p := int(c.Field.P)
	pos := make([]int, p)
	for x := 0; x < p; x++ {
		pos[x] = int(c.Field.EvalPoly(coeffs, uint64(x)))
	}
	return &SparseUnit{Positions: pos, BlockSize: p, Scale: c.scale}
}

// VectorForKey returns the vector indexed by an arbitrary byte string,
// hashed injectively when the key fits in the family capacity, otherwise
// via a 64-bit mix (callers needing strict injectivity should size the
// family to 2^(8·len(key))). This supports §4.2's "compute v_u from the
// bit representation of u".
func (c *Incoherent) VectorForKey(key []byte) *SparseUnit {
	var u uint64
	fits := len(key) <= 8
	if fits {
		for i, b := range key {
			u |= uint64(b) << (8 * uint(i))
		}
	} else {
		// FNV-1a style mix for long keys.
		u = 1469598103934665603
		for _, b := range key {
			u ^= uint64(b)
			u *= 1099511628211
		}
	}
	return c.Vector(u % c.N)
}

// GaussianFamily is the randomized (Johnson–Lindenstrauss) counterpart:
// n random unit vectors in dimension d, incoherent with high probability
// when d = Ω(ε⁻²·log n). Used by the Theorem 3 case-3 staircase
// construction, where the paper invokes the JL lemma.
type GaussianFamily struct {
	Vecs []vec.Vector
}

// NewGaussianFamily draws n iid uniform unit vectors in R^d.
func NewGaussianFamily(rng *xrand.RNG, n, d int) *GaussianFamily {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("codes: invalid Gaussian family n=%d d=%d", n, d))
	}
	vs := make([]vec.Vector, n)
	for i := range vs {
		vs[i] = rng.UnitVec(d)
	}
	return &GaussianFamily{Vecs: vs}
}

// MaxCoherence returns max_{i≠j} |v_iᵀv_j| (O(n²·d); intended for tests
// and certification, not hot paths).
func (g *GaussianFamily) MaxCoherence() float64 {
	var m float64
	for i := range g.Vecs {
		for j := i + 1; j < len(g.Vecs); j++ {
			if a := math.Abs(vec.Dot(g.Vecs[i], g.Vecs[j])); a > m {
				m = a
			}
		}
	}
	return m
}

// JLDim returns the standard dimension bound ⌈c·ε⁻²·ln n⌉ sufficient for
// n unit vectors to be ε-incoherent with high probability (c = 8 is a
// comfortable constant for the union bound over n² pairs).
func JLDim(n int, eps float64) int {
	if n < 2 || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("codes: JLDim invalid n=%d eps=%v", n, eps))
	}
	return int(math.Ceil(8 * math.Log(float64(n)) / (eps * eps)))
}
