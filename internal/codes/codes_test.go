package codes

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestIncoherentParameters(t *testing.T) {
	c, err := NewIncoherent(1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Eps() > 0.1 {
		t.Fatalf("certified eps %v exceeds request", c.Eps())
	}
	if c.Dim() <= 0 {
		t.Fatalf("dim = %d", c.Dim())
	}
}

func TestIncoherentUnitNorm(t *testing.T) {
	c, err := NewIncoherent(100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for u := uint64(0); u < 20; u++ {
		v := c.Vector(u).Dense()
		if math.Abs(vec.Norm(v)-1) > 1e-9 {
			t.Fatalf("vector %d has norm %v", u, vec.Norm(v))
		}
	}
}

func TestIncoherencePairwise(t *testing.T) {
	// Exhaustively verify |v_i·v_j| ≤ ε over a moderate family, using both
	// the sparse and the dense inner products.
	c, err := NewIncoherent(200, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	eps := c.Eps()
	n := uint64(200)
	sparse := make([]*SparseUnit, n)
	for u := uint64(0); u < n; u++ {
		sparse[u] = c.Vector(u)
	}
	for i := uint64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := sparse[i].Dot(sparse[j])
			if d > eps+1e-12 {
				t.Fatalf("coherence |v%d·v%d| = %v > eps %v", i, j, d, eps)
			}
			if i < 10 && j < 10 {
				dd := vec.Dot(sparse[i].Dense(), sparse[j].Dense())
				if math.Abs(dd-d) > 1e-12 {
					t.Fatalf("sparse/dense dot mismatch: %v vs %v", d, dd)
				}
			}
		}
	}
}

func TestVectorDistinctness(t *testing.T) {
	c, err := NewIncoherent(500, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]uint64{}
	for u := uint64(0); u < 500; u++ {
		key := ""
		for _, p := range c.Vector(u).Positions {
			key += string(rune(p)) + ","
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("vectors %d and %d identical", prev, u)
		}
		seen[key] = u
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	c, _ := NewIncoherent(10, 0.3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Vector(10)
}

func TestVectorForKey(t *testing.T) {
	c, _ := NewIncoherent(1<<16, 0.2)
	a := c.VectorForKey([]byte{1, 2})
	b := c.VectorForKey([]byte{1, 2})
	if a.Dot(b) < 0.999 {
		t.Fatal("same key must give same vector")
	}
	d := c.VectorForKey([]byte{3, 4})
	if a.Dot(d) > c.Eps()+1e-12 {
		t.Fatalf("distinct keys insufficiently incoherent: %v", a.Dot(d))
	}
	long := c.VectorForKey([]byte("a longer key than eight bytes"))
	if long == nil || long.Dim() != c.Dim() {
		t.Fatal("long keys must be supported")
	}
}

func TestNewIncoherentValidation(t *testing.T) {
	if _, err := NewIncoherent(1, 0.1); err == nil {
		t.Fatal("n=1 must fail")
	}
	if _, err := NewIncoherent(10, 0); err == nil {
		t.Fatal("eps=0 must fail")
	}
	if _, err := NewIncoherent(10, 1); err == nil {
		t.Fatal("eps=1 must fail")
	}
}

func TestIncoherentLargeN(t *testing.T) {
	// 2^40 addressable vectors must still yield sane parameters.
	c, err := NewIncoherent(1<<40, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c.Eps() > 0.05 {
		t.Fatalf("eps = %v", c.Eps())
	}
	v := c.Vector(1<<40 - 1)
	if v.Dim() != c.Dim() {
		t.Fatal("dimension mismatch at extreme index")
	}
}

func TestGaussianFamilyIncoherence(t *testing.T) {
	rng := xrand.New(42)
	n, eps := 50, 0.5
	d := JLDim(n, eps)
	g := NewGaussianFamily(rng, n, d)
	if got := g.MaxCoherence(); got > eps {
		t.Fatalf("Gaussian family coherence %v > %v at JL dimension %d", got, eps, d)
	}
	for _, v := range g.Vecs[:5] {
		if math.Abs(vec.Norm(v)-1) > 1e-9 {
			t.Fatal("Gaussian family vectors must be unit")
		}
	}
}

func TestJLDimMonotone(t *testing.T) {
	if JLDim(100, 0.1) <= JLDim(100, 0.2) {
		t.Fatal("smaller eps needs more dimensions")
	}
	if JLDim(1000, 0.1) <= JLDim(10, 0.1) {
		t.Fatal("more vectors need more dimensions")
	}
}

func TestJLDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JLDim(1, 0.1)
}

func BenchmarkIncoherentVector(b *testing.B) {
	c, err := NewIncoherent(1<<20, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Vector(uint64(i) % c.N)
	}
}
