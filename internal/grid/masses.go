package grid

import (
	"fmt"

	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// This file runs the *actual accounting of the Lemma 4 proof* on a
// concrete, finite hash family: per-node collision masses, the
// classification of colliding functions as shared / partially shared /
// proper with respect to each partition square G_{r,s}, and the
// inequality chain that yields the gap bound. Reproducing the proof's
// bookkeeping numerically both validates the implementation of the
// partition geometry and demonstrates the mechanism of the bound.

// SquareMasses aggregates the masses of one partition square.
type SquareMasses struct {
	Square
	// Total is M_{r,s}; Proper, Shared and PartShared decompose it.
	Total, Proper, Shared, PartShared float64
}

// MassAccounting is the full Lemma 4 ledger for a staircase instance.
type MassAccounting struct {
	N int
	// Mass[i][j] is the empirical collision probability of (q_i, p_j).
	Mass [][]float64
	// P1 is the minimum lower-triangle mass; P2 the maximum strict-upper
	// mass. Any (s, cs, P1', P2')-ALSH realised by this family has
	// P1' ≤ P1 and P2' ≥ P2.
	P1, P2  float64
	Squares []SquareMasses
}

// AccountMasses samples `trials` hashers from the family, evaluates
// them on the staircase sequences, and performs the Lemma 4 accounting.
// n must be 2^ℓ − 1.
func AccountMasses(f lsh.Family, P, Q []vec.Vector, trials int, seed uint64) (*MassAccounting, error) {
	n := len(P)
	if len(Q) != n {
		return nil, fmt.Errorf("grid: |P|=%d and |Q|=%d must match", n, len(Q))
	}
	if _, err := GridSize(n); err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("grid: trials=%d must be positive", trials)
	}
	sqs, err := Squares(n)
	if err != nil {
		return nil, err
	}
	ma := &MassAccounting{N: n, Mass: make([][]float64, n), P1: 1}
	for i := range ma.Mass {
		ma.Mass[i] = make([]float64, n)
	}
	perSquare := make(map[Square]*SquareMasses, len(sqs))
	for _, sq := range sqs {
		perSquare[sq] = &SquareMasses{Square: sq}
	}
	w := 1 / float64(trials)
	rng := xrand.New(seed)
	hp := make([]uint64, n)
	hq := make([]uint64, n)
	for t := 0; t < trials; t++ {
		h := f.Sample(rng)
		for j, p := range P {
			hp[j] = h.HashData(p)
		}
		for i, q := range Q {
			hq[i] = h.HashQuery(q)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if hq[i] != hp[j] {
					continue
				}
				ma.Mass[i][j] += w
				if j < i {
					continue // P2-node: mass only
				}
				sq, err := Locate(n, i, j)
				if err != nil {
					return nil, err
				}
				sm := perSquare[sq]
				sm.Total += w
				// Classify the function for this node per the proof:
				// K_{h,i,j} = colliding P1-nodes on the left of the row or the
				// top of the column.
				v := hq[i]
				anyLeft, inLeftBlocks := false, false
				leftLo, leftHi := sq.LeftBlockCols()
				for jp := i; jp < j; jp++ {
					if hp[jp] == v {
						anyLeft = true
						if jp >= leftLo && jp < leftHi {
							inLeftBlocks = true
						}
					}
				}
				anyTop, inTopBlocks := false, false
				topLo, topHi := sq.TopBlockRows()
				for ip := i + 1; ip <= j; ip++ {
					if hq[ip] == v {
						anyTop = true
						if ip >= topLo && ip < topHi {
							inTopBlocks = true
						}
					}
				}
				switch {
				case inLeftBlocks && inTopBlocks:
					sm.Shared += w
				case anyLeft && anyTop:
					sm.PartShared += w
				default:
					sm.Proper += w
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m := ma.Mass[i][j]
			if j >= i {
				if m < ma.P1 {
					ma.P1 = m
				}
			} else if m > ma.P2 {
				ma.P2 = m
			}
		}
	}
	for _, sq := range sqs {
		ma.Squares = append(ma.Squares, *perSquare[sq])
	}
	return ma, nil
}

// Gap returns the empirical P1 − P2.
func (ma *MassAccounting) Gap() float64 { return ma.P1 - ma.P2 }

// VerifyProof checks the proof's inequality chain on the ledger:
//
//  1. masses decompose: Total = Proper + Shared + PartShared per square;
//  2. M_{r,s} ≥ 2^{2r}·P1 (every node in the square is a P1-node);
//  3. the combined bound M_{r,s} ≤ (2^{r+1}+1)·Mp_{r,s} + 2^{2r}·P2;
//  4. Σ_{r,s} Mp_{r,s} ≤ 2n (row/column-proper masses are ≤ 1 per line);
//  5. the resulting gap bound P1 − P2 < 8/log₂ n.
//
// tol absorbs floating-point accumulation error.
func (ma *MassAccounting) VerifyProof(tol float64) error {
	var properSum float64
	for _, sm := range ma.Squares {
		if d := sm.Total - (sm.Proper + sm.Shared + sm.PartShared); d > tol || d < -tol {
			return fmt.Errorf("grid: square %+v masses do not decompose (residual %v)", sm.Square, d)
		}
		area := float64(sm.Side() * sm.Side())
		if sm.Total < area*ma.P1-tol {
			return fmt.Errorf("grid: square %+v total %v below area·P1 %v",
				sm.Square, sm.Total, area*ma.P1)
		}
		bound := float64(2*sm.Side()+1)*sm.Proper + area*ma.P2
		if sm.Total > bound+tol {
			return fmt.Errorf("grid: square %+v total %v exceeds combined bound %v",
				sm.Square, sm.Total, bound)
		}
		properSum += sm.Proper
	}
	if properSum > 2*float64(ma.N)+tol {
		return fmt.Errorf("grid: proper mass %v exceeds 2n = %d", properSum, 2*ma.N)
	}
	if ma.N >= 2 && ma.Gap() > GapBound(ma.N) {
		return fmt.Errorf("grid: gap %v exceeds Lemma 4 bound %v", ma.Gap(), GapBound(ma.N))
	}
	return nil
}
