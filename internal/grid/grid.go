// Package grid implements the combinatorial machinery of Lemma 4 and
// Figure 1 of Ahle et al.: the n×n query/data collision grid
// (P1-nodes at j ≥ i, P2-nodes at j < i), the partition of the lower
// triangle into exponentially-sized squares G_{r,s}, the left/top block
// geometry used in the mass-accounting proof, the resulting upper bound
// on the LSH gap P1 − P2, and an empirical gap estimator for concrete
// (A)LSH families evaluated on staircase sequences.
package grid

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// Square identifies the partition square G_{r,s}: side 2^r, covering
// rows [s·2^{r+1}, (2s+1)·2^r − 1] and columns
// [(2s+1)·2^r − 1, (s+1)·2^{r+1} − 2] of the grid. Its bottom-left
// corner ((2s+1)2^r − 1, (2s+1)2^r − 1) sits on the diagonal, which is
// the corner the paper quotes.
type Square struct{ R, S int }

// Side returns the square's side 2^r.
func (sq Square) Side() int { return 1 << uint(sq.R) }

// RowRange returns the half-open row interval [lo, hi).
func (sq Square) RowRange() (lo, hi int) {
	side := sq.Side()
	lo = sq.S * 2 * side
	return lo, lo + side
}

// ColRange returns the half-open column interval [lo, hi).
func (sq Square) ColRange() (lo, hi int) {
	side := sq.Side()
	lo = (2*sq.S+1)*side - 1
	return lo, lo + side
}

// Contains reports whether node (i, j) lies in the square.
func (sq Square) Contains(i, j int) bool {
	rlo, rhi := sq.RowRange()
	clo, chi := sq.ColRange()
	return rlo <= i && i < rhi && clo <= j && j < chi
}

// LeftBlockCols returns the half-open column interval of the left
// squares of G_{r,s}: [s·2^{r+1}, (2s+1)·2^r − 1) (same rows).
func (sq Square) LeftBlockCols() (lo, hi int) {
	side := sq.Side()
	return sq.S * 2 * side, (2*sq.S+1)*side - 1
}

// TopBlockRows returns the half-open row interval of the top squares of
// G_{r,s}: ((2s+1)·2^r − 1, (s+1)·2^{r+1} − 1) as [lo, hi) (same cols).
func (sq Square) TopBlockRows() (lo, hi int) {
	side := sq.Side()
	return (2*sq.S+1)*side - 1 + 1, (sq.S+1)*2*side - 1
}

// GridSize validates n = 2^ℓ − 1 and returns ℓ.
func GridSize(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("grid: n=%d must be positive", n)
	}
	l := 0
	for v := n + 1; v > 1; v >>= 1 {
		if v&1 == 1 {
			return 0, fmt.Errorf("grid: n=%d is not 2^l − 1", n)
		}
		l++
	}
	return l, nil
}

// Squares enumerates the partition of the lower triangle of the n×n
// grid (n = 2^ℓ − 1): G_{r,s} for 0 ≤ r < ℓ, 0 ≤ s < 2^{ℓ−r−1}.
func Squares(n int) ([]Square, error) {
	l, err := GridSize(n)
	if err != nil {
		return nil, err
	}
	var out []Square
	for r := 0; r < l; r++ {
		count := 1 << uint(l-r-1)
		for s := 0; s < count; s++ {
			out = append(out, Square{R: r, S: s})
		}
	}
	return out, nil
}

// Locate returns the unique partition square containing P1-node (i, j),
// requiring 0 ≤ i ≤ j < n.
func Locate(n, i, j int) (Square, error) {
	l, err := GridSize(n)
	if err != nil {
		return Square{}, err
	}
	if i < 0 || j < i || j >= n {
		return Square{}, fmt.Errorf("grid: node (%d,%d) not in lower triangle of %d-grid", i, j, n)
	}
	for r := 0; r < l; r++ {
		side := 1 << uint(r)
		// Columns of G_{r,s} are [(2s+1)·side − 1, (2s+2)·side − 2];
		// equivalently (j+1) ∈ [(2s+1)·side, (2s+2)·side − 1].
		t := j + 1
		if t%(2*side) < side {
			continue
		}
		s := (t - side) / (2 * side)
		sq := Square{R: r, S: s}
		if sq.Contains(i, j) {
			return sq, nil
		}
	}
	return Square{}, fmt.Errorf("grid: node (%d,%d) not covered — partition broken", i, j)
}

// GapBound returns the Lemma 4 upper bound on P1 − P2 for staircase
// sequences of length n, with the constants that fall out of the proof's
// final accounting (2n > (P1−P2)·n·log₂(n)/4 ⇒ P1 − P2 < 8/log₂ n).
func GapBound(n int) float64 {
	if n < 2 {
		panic(fmt.Sprintf("grid: GapBound needs n >= 2, got %d", n))
	}
	return 8 / math.Log2(float64(n))
}

// Render draws the grid partition as ASCII art in the style of
// Figure 1: P1-nodes are labelled with the r of their square, P2-nodes
// with '·'. For n = 15 this reproduces the figure's layout.
func Render(n int) (string, error) {
	if _, err := GridSize(n); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "    j→ ")
	for j := 0; j < n; j++ {
		fmt.Fprintf(&b, "%2d", j%100)
	}
	b.WriteString("\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "i=%3d  ", i)
		for j := 0; j < n; j++ {
			if j < i {
				b.WriteString(" ·")
				continue
			}
			sq, err := Locate(n, i, j)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%2d", sq.R)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// EmpiricalGap samples `trials` hashers from the family, evaluates them
// on staircase sequences (P[j] data, Q[i] query), and returns the
// empirical P1 (minimum collision frequency over nodes j ≥ i) and P2
// (maximum over nodes j < i). Any valid (s, cs, P1, P2)-ALSH for the
// similarity realised by the staircase must have P1 ≤ p1 and P2 ≥ p2,
// so p1 − p2 is an upper bound on its achievable gap — Lemma 4 says it
// stays below GapBound(n).
func EmpiricalGap(f lsh.Family, P, Q []vec.Vector, trials int, seed uint64) (p1, p2 float64) {
	n := len(P)
	if n == 0 || len(Q) != n {
		panic(fmt.Sprintf("grid: need equal nonempty sequences, got |P|=%d |Q|=%d", n, len(Q)))
	}
	if trials <= 0 {
		panic(fmt.Sprintf("grid: trials=%d must be positive", trials))
	}
	counts := make([][]int, n) // counts[i][j] collisions of (q_i, p_j)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	rng := xrand.New(seed)
	hp := make([]uint64, n)
	hq := make([]uint64, n)
	for t := 0; t < trials; t++ {
		h := f.Sample(rng)
		for j, p := range P {
			hp[j] = h.HashData(p)
		}
		for i, q := range Q {
			hq[i] = h.HashQuery(q)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if hq[i] == hp[j] {
					counts[i][j]++
				}
			}
		}
	}
	p1 = 1.0
	p2 = 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			freq := float64(counts[i][j]) / float64(trials)
			if j >= i {
				if freq < p1 {
					p1 = freq
				}
			} else if freq > p2 {
				p2 = freq
			}
		}
	}
	return p1, p2
}
