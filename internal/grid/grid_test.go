package grid

import (
	"strings"
	"testing"

	"repro/internal/lsh"
	"repro/internal/vec"
)

func TestGridSize(t *testing.T) {
	ok := map[int]int{1: 1, 3: 2, 7: 3, 15: 4, 1023: 10}
	for n, want := range ok {
		got, err := GridSize(n)
		if err != nil || got != want {
			t.Fatalf("GridSize(%d) = %d, %v; want %d", n, got, err, want)
		}
	}
	for _, n := range []int{0, 2, 4, 8, 16, -1} {
		if _, err := GridSize(n); err == nil {
			t.Fatalf("GridSize(%d) should fail", n)
		}
	}
}

func TestSquaresPartitionLowerTriangle(t *testing.T) {
	// Every node (i, j) with j ≥ i must be covered by exactly one square.
	for _, n := range []int{1, 3, 7, 15, 31, 63} {
		sqs, err := Squares(n)
		if err != nil {
			t.Fatal(err)
		}
		cover := make(map[[2]int]int)
		for _, sq := range sqs {
			rlo, rhi := sq.RowRange()
			clo, chi := sq.ColRange()
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					if j < i || j >= n || i < 0 {
						t.Fatalf("n=%d: square %+v leaves the lower triangle at (%d,%d)", n, sq, i, j)
					}
					cover[[2]int{i, j}]++
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if cover[[2]int{i, j}] != 1 {
					t.Fatalf("n=%d: node (%d,%d) covered %d times", n, i, j, cover[[2]int{i, j}])
				}
			}
		}
	}
}

func TestSquareCounts(t *testing.T) {
	// ℓ levels: 2^{ℓ−r−1} squares of side 2^r.
	sqs, _ := Squares(15)
	counts := map[int]int{}
	for _, sq := range sqs {
		counts[sq.R]++
	}
	want := map[int]int{0: 8, 1: 4, 2: 2, 3: 1}
	for r, w := range want {
		if counts[r] != w {
			t.Fatalf("level %d has %d squares, want %d", r, counts[r], w)
		}
	}
}

func TestSquareDiagonalCorner(t *testing.T) {
	// The bottom-left corner ((2s+1)2^r − 1, (2s+1)2^r − 1) must sit on
	// the diagonal and inside the square.
	sqs, _ := Squares(31)
	for _, sq := range sqs {
		corner := (2*sq.S + 1) * sq.Side()
		if !sq.Contains(corner-1, corner-1) {
			t.Fatalf("square %+v does not contain its diagonal corner %d", sq, corner-1)
		}
	}
}

func TestLocateAgreesWithEnumeration(t *testing.T) {
	const n = 31
	sqs, _ := Squares(n)
	byNode := make(map[[2]int]Square)
	for _, sq := range sqs {
		rlo, rhi := sq.RowRange()
		clo, chi := sq.ColRange()
		for i := rlo; i < rhi; i++ {
			for j := clo; j < chi; j++ {
				byNode[[2]int{i, j}] = sq
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			got, err := Locate(n, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got != byNode[[2]int{i, j}] {
				t.Fatalf("Locate(%d,%d) = %+v, want %+v", i, j, got, byNode[[2]int{i, j}])
			}
		}
	}
}

func TestLocateRejectsUpperTriangle(t *testing.T) {
	if _, err := Locate(15, 5, 3); err == nil {
		t.Fatal("P2-node must be rejected")
	}
	if _, err := Locate(15, 0, 15); err == nil {
		t.Fatal("out of range must be rejected")
	}
}

func TestBlockGeometry(t *testing.T) {
	// For G_{2,0} on the 15-grid (rows 0..3, cols 3..6): left blocks span
	// cols 0..2, top blocks rows 4..6 — as in the Figure 1 zoom.
	sq := Square{R: 2, S: 0}
	rlo, rhi := sq.RowRange()
	clo, chi := sq.ColRange()
	if rlo != 0 || rhi != 4 || clo != 3 || chi != 7 {
		t.Fatalf("G_{2,0} geometry = rows [%d,%d) cols [%d,%d)", rlo, rhi, clo, chi)
	}
	llo, lhi := sq.LeftBlockCols()
	if llo != 0 || lhi != 3 {
		t.Fatalf("left block cols [%d,%d)", llo, lhi)
	}
	tlo, thi := sq.TopBlockRows()
	if tlo != 4 || thi != 7 {
		t.Fatalf("top block rows [%d,%d)", tlo, thi)
	}
}

func TestLeftTopBlocksHoldSmallerSquares(t *testing.T) {
	// The paper: the left (resp. top) blocks of G_{r,s} contain 2^{r-i-1}
	// partition squares of side 2^i for each 0 ≤ i < r. Verify by counting
	// the partition squares whose columns (resp. rows) fall inside the
	// block range and whose rows (resp. columns) stay within the region.
	const n = 63
	sqs, _ := Squares(n)
	for _, sq := range sqs {
		if sq.R == 0 {
			continue // no blocks
		}
		rlo, rhi := sq.RowRange()
		llo, lhi := sq.LeftBlockCols()
		leftCount := map[int]int{}
		for _, other := range sqs {
			olo, ohi := other.ColRange()
			orlo, orhi := other.RowRange()
			if olo >= llo && ohi <= lhi && orlo >= rlo && orhi <= rhi {
				leftCount[other.R]++
			}
		}
		for i := 0; i < sq.R; i++ {
			if want := 1 << uint(sq.R-i-1); leftCount[i] != want {
				t.Fatalf("left blocks of %+v: %d squares of side 2^%d, want %d",
					sq, leftCount[i], i, want)
			}
		}
		clo, chi := sq.ColRange()
		tlo, thi := sq.TopBlockRows()
		topCount := map[int]int{}
		for _, other := range sqs {
			orlo, orhi := other.RowRange()
			oclo, ochi := other.ColRange()
			if orlo >= tlo && orhi <= thi && oclo >= clo && ochi <= chi {
				topCount[other.R]++
			}
		}
		for i := 0; i < sq.R; i++ {
			if want := 1 << uint(sq.R-i-1); topCount[i] != want {
				t.Fatalf("top blocks of %+v: %d squares of side 2^%d, want %d",
					sq, topCount[i], i, want)
			}
		}
	}
}

func TestGapBound(t *testing.T) {
	if GapBound(1024) >= GapBound(32) {
		t.Fatal("bound must tighten with n")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	GapBound(1)
}

func TestRenderFigure1(t *testing.T) {
	out, err := Render(15)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 16 { // header + 15 rows
		t.Fatalf("render has %d lines", len(lines))
	}
	// Row 0 must start in square level 0 at (0,0) and contain the level-3
	// square at columns 7..14.
	if !strings.Contains(lines[1], " 0") || !strings.Contains(lines[1], " 3") {
		t.Fatalf("row 0 rendering suspicious: %q", lines[1])
	}
	if _, err := Render(8); err == nil {
		t.Fatal("invalid n must fail")
	}
}

func TestEmpiricalGapSanity(t *testing.T) {
	// A staircase where hits are near-duplicates and misses are
	// near-orthogonal: hyperplane hashing should show a LARGE empirical
	// gap here — establishing the estimator works — because this toy
	// sequence is NOT a Lemma 4 staircase (it has huge length-1 "n").
	d := 4
	p := vec.Vector{1, 0, 0, 0}
	q := vec.Vector{1, 0, 0, 0}
	fam, _ := lsh.NewHyperplane(d)
	p1, p2 := EmpiricalGap(fam, []vec.Vector{p}, []vec.Vector{q}, 500, 1)
	if p1 != 1 || p2 != 0 {
		t.Fatalf("single identical pair: p1=%v p2=%v", p1, p2)
	}
}

func TestEmpiricalGapPanics(t *testing.T) {
	fam, _ := lsh.NewHyperplane(2)
	for i, f := range []func(){
		func() { EmpiricalGap(fam, nil, nil, 10, 1) },
		func() {
			EmpiricalGap(fam, []vec.Vector{{1, 0}}, []vec.Vector{{1, 0}}, 0, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
