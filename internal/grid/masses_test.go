package grid

import (
	"math"
	"testing"

	"repro/internal/lsh"
	"repro/internal/seqs"
	"repro/internal/transform"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// staircase15 builds a 15-long case-1 staircase (d=1) plus the
// SIMPLE-ALSH family over it.
func staircase15(t testing.TB) ([]vec.Vector, []vec.Vector, lsh.Family) {
	t.Helper()
	const u = 1 << 16
	st, err := seqs.Case1_1D(1.0/256, 0.5, u)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() < 15 {
		t.Fatalf("staircase too short: %d", st.Len())
	}
	P, Q := st.P[:15], st.Q[:15]
	tr, err := transform.NewSimple(1, u)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := lsh.NewHyperplane(tr.OutputDim())
	if err != nil {
		t.Fatal(err)
	}
	fam, err := lsh.NewAsymmetric("simple-alsh", lsh.MapPair{
		Data:  tr.Data,
		Query: tr.Query,
	}, inner)
	if err != nil {
		t.Fatal(err)
	}
	return P, Q, fam
}

func TestAccountMassesLedger(t *testing.T) {
	P, Q, fam := staircase15(t)
	ma, err := AccountMasses(fam, P, Q, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ma.N != 15 || len(ma.Squares) != 15 {
		t.Fatalf("ledger shape N=%d squares=%d", ma.N, len(ma.Squares))
	}
	// Total square mass must equal the lower-triangle mass.
	var squareTotal, lowerMass float64
	for _, sm := range ma.Squares {
		squareTotal += sm.Total
	}
	for i := 0; i < 15; i++ {
		for j := i; j < 15; j++ {
			lowerMass += ma.Mass[i][j]
		}
	}
	if math.Abs(squareTotal-lowerMass) > 1e-9 {
		t.Fatalf("square masses %v != lower-triangle mass %v", squareTotal, lowerMass)
	}
	if ma.P1 < 0 || ma.P1 > 1 || ma.P2 < 0 || ma.P2 > 1 {
		t.Fatalf("P1=%v P2=%v out of range", ma.P1, ma.P2)
	}
}

func TestAccountMassesProofInequalities(t *testing.T) {
	P, Q, fam := staircase15(t)
	ma, err := AccountMasses(fam, P, Q, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.VerifyProof(1e-9); err != nil {
		t.Fatal(err)
	}
	// The headline consequence: the empirical gap respects Lemma 4.
	if ma.Gap() > GapBound(15) {
		t.Fatalf("gap %v above bound %v", ma.Gap(), GapBound(15))
	}
}

func TestAccountMassesDegenerateFamily(t *testing.T) {
	// A constant hash function collides everywhere: P1 = P2 = 1, all
	// mass proper/partially-shared/shared must still decompose and the
	// gap must be 0.
	P := make([]vec.Vector, 7)
	Q := make([]vec.Vector, 7)
	for i := range P {
		P[i] = vec.Vector{1}
		Q[i] = vec.Vector{1}
	}
	fam := constFamily{}
	ma, err := AccountMasses(fam, P, Q, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ma.P1-1) > 1e-9 || math.Abs(ma.P2-1) > 1e-9 || math.Abs(ma.Gap()) > 1e-9 {
		t.Fatalf("constant family: P1=%v P2=%v", ma.P1, ma.P2)
	}
	if err := ma.VerifyProof(1e-9); err != nil {
		t.Fatal(err)
	}
}

type constFamily struct{}

func (constFamily) Name() string { return "const" }
func (constFamily) Sample(*xrand.RNG) lsh.Hasher {
	return constHasher{}
}

type constHasher struct{}

func (constHasher) HashData(vec.Vector) uint64  { return 7 }
func (constHasher) HashQuery(vec.Vector) uint64 { return 7 }

func TestAccountMassesValidation(t *testing.T) {
	fam := constFamily{}
	v := []vec.Vector{{1}}
	if _, err := AccountMasses(fam, v, nil, 10, 1); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := AccountMasses(fam, v, v, 0, 1); err == nil {
		t.Fatal("trials=0 must fail")
	}
	two := []vec.Vector{{1}, {1}}
	if _, err := AccountMasses(fam, two, two, 10, 1); err == nil {
		t.Fatal("n=2 (not 2^l−1) must fail")
	}
}
