// Package embed implements the three gap embeddings of Lemma 3 in
// Ahle, Pagh, Razenshteyn, Silvestri, "On the Complexity of Inner
// Product Similarity Join" (PODS 2016). A gap embedding is a pair of
// maps (f, g) from OVP inputs {0,1}^d1 into a restricted alphabet such
// that orthogonal input pairs land at inner product ≥ s while
// non-orthogonal pairs land at (absolute) inner product ≤ cs. These are
// the engines of the paper's Theorems 1 and 2: they transfer OVP
// hardness to approximate IPS join.
//
// All three constructions here are exact and deterministic; the (cs, s)
// parameters are certified identities, not estimates, and the tests
// verify them exhaustively on random OVP pairs.
package embed

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/cheb"
)

// Params describes a (d1, d2, cs, s) gap embedding.
type Params struct {
	// D1 is the input OVP dimension, D2 the output dimension.
	D1, D2 int
	// CS is the guaranteed bound on |f(x)ᵀg(y)| for non-orthogonal pairs;
	// S is the guaranteed inner product for orthogonal pairs.
	CS, S float64
	// Signed records whether the guarantee is on the signed inner product
	// (true) or its absolute value (false = unsigned).
	Signed bool
	// Alphabet is a human-readable domain tag: "{-1,1}" or "{0,1}".
	Alphabet string
}

// C returns the approximation factor cs/s of the embedding.
func (p Params) C() float64 { return p.CS / p.S }

// Ratio returns log(s/d2)/log(cs/d2), the normalized hardness parameter
// used by Theorem 2 and the fourth column of Table 1. It is NaN when
// cs = 0 (embedding 1, where the ratio tends to 0 in the paper's
// c → 0 limit).
func (p Params) Ratio() float64 {
	d2 := float64(p.D2)
	return math.Log(p.S/d2) / math.Log(p.CS/d2)
}

// SignedPM1 is embedding 1: a signed (d, 4d−4, 0, 4) embedding into
// {−1,1}. Orthogonal pairs map to inner product exactly 4; pairs with
// xᵀy ≥ 1 map to inner product ≤ 0 (possibly very negative — the signed
// guarantee does not care).
type SignedPM1 struct {
	d int
}

// NewSignedPM1 returns embedding 1 for input dimension d ≥ 4.
func NewSignedPM1(d int) (*SignedPM1, error) {
	if d < 4 {
		return nil, fmt.Errorf("embed: SignedPM1 requires d >= 4, got %d", d)
	}
	return &SignedPM1{d: d}, nil
}

// Params returns the certified (d, 4d−4, 0, 4) parameters.
func (e *SignedPM1) Params() Params {
	return Params{D1: e.d, D2: 4*e.d - 4, CS: 0, S: 4, Signed: true, Alphabet: "{-1,1}"}
}

// coordF and coordG are the per-coordinate maps fˆ, gˆ of Lemma 3:
// fˆ(0)=(1,−1,−1), fˆ(1)=(1,1,1); gˆ(0)=(1,1,−1), gˆ(1)=(−1,−1,−1).
// They satisfy fˆ(a)ᵀgˆ(b) = 1 unless a=b=1, where it is −3.
var (
	coordF = [2][3]int{{1, -1, -1}, {1, 1, 1}}
	coordG = [2][3]int{{1, 1, -1}, {-1, -1, -1}}
)

func (e *SignedPM1) check(x *bitvec.Bits) {
	if x.N != e.d {
		panic(fmt.Sprintf("embed: input dimension %d, embedding built for %d", x.N, e.d))
	}
}

// F embeds a data vector.
func (e *SignedPM1) F(x *bitvec.Bits) *bitvec.Signs {
	e.check(x)
	out := bitvec.NewSigns(4*e.d - 4)
	pos := 0
	for i := 0; i < e.d; i++ {
		for _, v := range coordF[x.Bit(i)] {
			out.SetSign(pos, v)
			pos++
		}
	}
	// Trailing d−4 coordinates stay +1 (translate inner product by −(d−4)
	// against G's −1 block).
	return out
}

// G embeds a query vector.
func (e *SignedPM1) G(y *bitvec.Bits) *bitvec.Signs {
	e.check(y)
	out := bitvec.NewSigns(4*e.d - 4)
	pos := 0
	for i := 0; i < e.d; i++ {
		for _, v := range coordG[y.Bit(i)] {
			out.SetSign(pos, v)
			pos++
		}
	}
	for i := 0; i < e.d-4; i++ {
		out.SetSign(pos, -1)
		pos++
	}
	return out
}

// ChebyshevPM1 is embedding 2: an unsigned
// (d, dim_q, (2d)^q, (2d)^q·T_q(1+1/d)) embedding into {−1,1} realising
// the scaled Chebyshev polynomial (2d)^q·T_q(u/(2d)) on the translated
// base inner product u. It is the deterministic counterpart of Valiant's
// randomized Chebyshev embedding.
type ChebyshevPM1 struct {
	d, q int
	dim  int
}

// MaxChebyshevDim caps the output dimension of NewChebyshevPM1; the
// recursion grows like (9d)^q, so callers must opt in to large builds.
const MaxChebyshevDim = 1 << 26

// NewChebyshevPM1 returns embedding 2 for input dimension d ≥ 4 and
// polynomial order q ≥ 1. The output dimension follows the recurrence
// d_0 = 1, d_1 = 4d+2, d_q = 2(4d+2)·d_{q−1} + (2d)²·d_{q−2} and is
// bounded by (9d)^q for d ≥ 8.
func NewChebyshevPM1(d, q int) (*ChebyshevPM1, error) {
	if d < 4 {
		return nil, fmt.Errorf("embed: ChebyshevPM1 requires d >= 4, got %d", d)
	}
	if q < 1 {
		return nil, fmt.Errorf("embed: ChebyshevPM1 requires q >= 1, got %d", q)
	}
	dims, err := chebDims(d, q)
	if err != nil {
		return nil, err
	}
	return &ChebyshevPM1{d: d, q: q, dim: dims[q]}, nil
}

// chebDims returns the dimension sequence d_0..d_q, guarding overflow.
func chebDims(d, q int) ([]int, error) {
	dims := make([]int, q+1)
	dims[0] = 1
	if q >= 1 {
		dims[1] = 4*d + 2
	}
	for i := 2; i <= q; i++ {
		dims[i] = 2*(4*d+2)*dims[i-1] + (2*d)*(2*d)*dims[i-2]
		if dims[i] <= 0 || dims[i] > MaxChebyshevDim {
			return nil, fmt.Errorf("embed: ChebyshevPM1 dimension %d exceeds cap %d at level %d",
				dims[i], MaxChebyshevDim, i)
		}
	}
	return dims, nil
}

// Params returns the certified parameters. S is the exact orthogonal
// inner product (2d)^q·T_q(1+1/d); CS is the exact bound (2d)^q.
func (e *ChebyshevPM1) Params() Params {
	b := float64(2 * e.d)
	cs := math.Pow(b, float64(e.q))
	s := cs * cheb.T(e.q, 1+1/float64(e.d))
	return Params{D1: e.d, D2: e.dim, CS: cs, S: s, Signed: false, Alphabet: "{-1,1}"}
}

func (e *ChebyshevPM1) check(x *bitvec.Bits) {
	if x.N != e.d {
		panic(fmt.Sprintf("embed: input dimension %d, embedding built for %d", x.N, e.d))
	}
}

// baseF maps x into {−1,1}^{4d+2}: the per-coordinate map followed by
// d+2 trailing (+1) coordinates; against baseG this gives inner product
// u = (d − 4·xᵀy) + (d+2), i.e. 2d+2 for orthogonal pairs and
// |u| ≤ 2d−2 otherwise.
func (e *ChebyshevPM1) baseF(x *bitvec.Bits) *bitvec.Signs {
	out := bitvec.NewSigns(4*e.d + 2)
	pos := 0
	for i := 0; i < e.d; i++ {
		for _, v := range coordF[x.Bit(i)] {
			out.SetSign(pos, v)
			pos++
		}
	}
	// trailing d+2 coordinates stay +1
	return out
}

func (e *ChebyshevPM1) baseG(y *bitvec.Bits) *bitvec.Signs {
	out := bitvec.NewSigns(4*e.d + 2)
	pos := 0
	for i := 0; i < e.d; i++ {
		for _, v := range coordG[y.Bit(i)] {
			out.SetSign(pos, v)
			pos++
		}
	}
	// trailing d+2 coordinates stay +1
	return out
}

// build runs the tensor recursion
// h_q = (base ⊗ h_{q−1})^{⊕2} ⊕ (σ·h_{q−2})^{⊕(2d)²}
// with σ = +1 on the data side and σ = −1 on the query side, which
// realises ip_q = 2u·ip_{q−1} − (2d)²·ip_{q−2} = (2d)^q·T_q(u/2d).
func (e *ChebyshevPM1) build(base *bitvec.Signs, negateOlder bool) *bitvec.Signs {
	prev := bitvec.AllOnes(1) // h_0
	cur := base.Clone()       // h_1
	sq := (2 * e.d) * (2 * e.d)
	for level := 2; level <= e.q; level++ {
		t := bitvec.TensorSigns(base, cur)
		older := prev
		if negateOlder {
			older = prev.Neg()
		}
		next := bitvec.ConcatSigns(t, t, bitvec.RepeatSigns(older, sq))
		prev, cur = cur, next
	}
	return cur
}

// F embeds a data vector.
func (e *ChebyshevPM1) F(x *bitvec.Bits) *bitvec.Signs {
	e.check(x)
	return e.build(e.baseF(x), false)
}

// G embeds a query vector.
func (e *ChebyshevPM1) G(y *bitvec.Bits) *bitvec.Signs {
	e.check(y)
	return e.build(e.baseG(y), true)
}

// ChebyshevRatio returns the Theorem-2 hardness parameter
// log(s/d2)/log(cs/d2) of embedding 2, computed analytically with a
// floating-point dimension recurrence so it works at scales where the
// explicit vectors would not fit in memory.
func ChebyshevRatio(d, q int) float64 {
	if d < 4 || q < 1 {
		panic(fmt.Sprintf("embed: ChebyshevRatio invalid d=%d q=%d", d, q))
	}
	// log-space dimension recurrence to avoid overflow.
	prev, cur := 0.0, math.Log(float64(4*d+2)) // log d_0, log d_1
	a := math.Log(2 * float64(4*d+2))
	b := 2 * math.Log(float64(2*d))
	for i := 2; i <= q; i++ {
		// log(e^{a+cur} + e^{b+prev})
		hi, lo := a+cur, b+prev
		if lo > hi {
			hi, lo = lo, hi
		}
		prev, cur = cur, hi+math.Log1p(math.Exp(lo-hi))
	}
	logD2 := cur
	logCS := float64(q) * math.Log(float64(2*d))
	logS := logCS + math.Log(cheb.T(q, 1+1/float64(d)))
	return (logS - logD2) / (logCS - logD2)
}

// Chopped01 is embedding 3: an unsigned (d, ≤k·2^⌈d/k⌉, k−1, k)
// embedding into {0,1}. It realises the chopped product polynomial
// Σ_chunks Π_{j∈chunk} (1 − x_j·y_j): each chunk contributes 1 exactly
// when the two inputs do not overlap inside the chunk.
type Chopped01 struct {
	d, k   int
	chunks []int // chunk lengths, summing to d
	dim    int
}

// MaxChoppedDim caps the output dimension of NewChopped01.
const MaxChoppedDim = 1 << 26

// NewChopped01 returns embedding 3 for input dimension d and chunk count
// 1 ≤ k ≤ d. Larger k means smaller output dimension (k·2^{d/k}) but a
// weaker gap (k−1 vs k).
func NewChopped01(d, k int) (*Chopped01, error) {
	if d < 1 {
		return nil, fmt.Errorf("embed: Chopped01 requires d >= 1, got %d", d)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("embed: Chopped01 requires 1 <= k <= d, got k=%d d=%d", k, d)
	}
	base, extra := d/k, d%k
	chunks := make([]int, k)
	dim := 0
	for i := range chunks {
		chunks[i] = base
		if i < extra {
			chunks[i]++
		}
		if chunks[i] > 60 {
			return nil, fmt.Errorf("embed: Chopped01 chunk length %d too large (max 60)", chunks[i])
		}
		dim += 1 << uint(chunks[i])
		if dim > MaxChoppedDim {
			return nil, fmt.Errorf("embed: Chopped01 dimension exceeds cap %d", MaxChoppedDim)
		}
	}
	return &Chopped01{d: d, k: k, chunks: chunks, dim: dim}, nil
}

// Params returns the certified (d, Σ2^{chunk}, k−1, k) parameters.
func (e *Chopped01) Params() Params {
	return Params{D1: e.d, D2: e.dim, CS: float64(e.k - 1), S: float64(e.k),
		Signed: false, Alphabet: "{0,1}"}
}

func (e *Chopped01) check(x *bitvec.Bits) {
	if x.N != e.d {
		panic(fmt.Sprintf("embed: input dimension %d, embedding built for %d", x.N, e.d))
	}
}

// pairF returns the 2-dim factor (1−x_j, 1) and pairG returns (y_j, 1−y_j);
// their inner product is (1−x_j)·y_j + (1−y_j) = 1 − x_j·y_j.
func pairF(bit int) *bitvec.Bits { return bitvec.BitsFromInts([]int{1 - bit, 1}) }
func pairG(bit int) *bitvec.Bits { return bitvec.BitsFromInts([]int{bit, 1 - bit}) }

func (e *Chopped01) apply(x *bitvec.Bits, pair func(int) *bitvec.Bits) *bitvec.Bits {
	parts := make([]*bitvec.Bits, 0, e.k)
	pos := 0
	for _, clen := range e.chunks {
		t := bitvec.BitsFromInts([]int{1})
		for j := 0; j < clen; j++ {
			t = bitvec.TensorBits(t, pair(x.Bit(pos)))
			pos++
		}
		parts = append(parts, t)
	}
	return bitvec.ConcatBits(parts...)
}

// F embeds a data vector.
func (e *Chopped01) F(x *bitvec.Bits) *bitvec.Bits {
	e.check(x)
	return e.apply(x, pairF)
}

// G embeds a query vector.
func (e *Chopped01) G(y *bitvec.Bits) *bitvec.Bits {
	e.check(y)
	return e.apply(y, pairG)
}
