package embed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/cheb"
)

// randPair returns random x, y ∈ {0,1}^d with exactly the requested
// number of overlapping 1-positions (xᵀy = overlap).
func randPair(r *rand.Rand, d, overlap int) (*bitvec.Bits, *bitvec.Bits) {
	x, y := bitvec.NewBits(d), bitvec.NewBits(d)
	perm := r.Perm(d)
	pos := 0
	for i := 0; i < overlap; i++ {
		x.SetBit(perm[pos], 1)
		y.SetBit(perm[pos], 1)
		pos++
	}
	// Remaining positions: never both 1.
	for ; pos < d; pos++ {
		switch r.Intn(3) {
		case 0:
			x.SetBit(perm[pos], 1)
		case 1:
			y.SetBit(perm[pos], 1)
		}
	}
	return x, y
}

func TestSignedPM1Exact(t *testing.T) {
	// f(x)ᵀg(y) = 4 − 4·xᵀy exactly.
	r := rand.New(rand.NewSource(1))
	for _, d := range []int{4, 5, 8, 16, 33} {
		e, err := NewSignedPM1(d)
		if err != nil {
			t.Fatal(err)
		}
		p := e.Params()
		if p.D2 != 4*d-4 || p.S != 4 || p.CS != 0 || !p.Signed {
			t.Fatalf("params = %+v", p)
		}
		for ov := 0; ov <= min(d, 5); ov++ {
			x, y := randPair(r, d, ov)
			fx, gy := e.F(x), e.G(y)
			if fx.N != p.D2 || gy.N != p.D2 {
				t.Fatalf("dim %d, want %d", fx.N, p.D2)
			}
			got := bitvec.DotSigns(fx, gy)
			if got != 4-4*ov {
				t.Fatalf("d=%d ov=%d: dot = %d, want %d", d, ov, got, 4-4*ov)
			}
		}
	}
}

func TestSignedPM1Gap(t *testing.T) {
	// Property: orthogonal ⇒ dot ≥ s; non-orthogonal ⇒ dot ≤ cs = 0.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 4 + r.Intn(30)
		e, _ := NewSignedPM1(d)
		p := e.Params()
		ov := r.Intn(min(d, 4))
		x, y := randPair(r, d, ov)
		dot := float64(bitvec.DotSigns(e.F(x), e.G(y)))
		if ov == 0 {
			return dot >= p.S
		}
		return dot <= p.CS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedPM1Validation(t *testing.T) {
	if _, err := NewSignedPM1(3); err == nil {
		t.Fatal("d=3 must fail")
	}
}

func TestSignedPM1DimMismatchPanics(t *testing.T) {
	e, _ := NewSignedPM1(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.F(bitvec.NewBits(9))
}

func TestChebyshevExactIdentity(t *testing.T) {
	// f_q(x)ᵀg_q(y) = (2d)^q·T_q(u/2d) with u = 2d+2−4·xᵀy, exactly.
	r := rand.New(rand.NewSource(2))
	for _, d := range []int{4, 8, 11} {
		for q := 1; q <= 3; q++ {
			e, err := NewChebyshevPM1(d, q)
			if err != nil {
				t.Fatal(err)
			}
			for ov := 0; ov <= 3; ov++ {
				x, y := randPair(r, d, ov)
				got := float64(bitvec.DotSigns(e.F(x), e.G(y)))
				u := float64(2*d + 2 - 4*ov)
				want := cheb.ScaledRec(q, u, float64(2*d))
				if got != want {
					t.Fatalf("d=%d q=%d ov=%d: dot=%v want=%v", d, q, ov, got, want)
				}
			}
		}
	}
}

func TestChebyshevGap(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, d := range []int{8, 16} {
		for q := 1; q <= 3; q++ {
			e, _ := NewChebyshevPM1(d, q)
			p := e.Params()
			if p.S <= p.CS {
				t.Fatalf("d=%d q=%d: s=%v must exceed cs=%v", d, q, p.S, p.CS)
			}
			// Certified s must respect the paper's e^{q/√d}/2 growth bound.
			if lb := p.CS * cheb.GrowthLowerBound(q, 1/float64(d)); p.S < lb {
				t.Fatalf("s=%v below growth bound %v", p.S, lb)
			}
			for trial := 0; trial < 10; trial++ {
				ov := r.Intn(4)
				x, y := randPair(r, d, ov)
				dot := math.Abs(float64(bitvec.DotSigns(e.F(x), e.G(y))))
				if ov == 0 && dot < p.S {
					t.Fatalf("orthogonal pair dot %v < s %v", dot, p.S)
				}
				if ov > 0 && dot > p.CS {
					t.Fatalf("overlapping pair |dot| %v > cs %v", dot, p.CS)
				}
			}
		}
	}
}

func TestChebyshevDimensionBound(t *testing.T) {
	// d_q ≤ (9d)^q for d ≥ 8 (the paper's bound).
	for _, d := range []int{8, 16, 32} {
		for q := 1; q <= 3; q++ {
			e, err := NewChebyshevPM1(d, q)
			if err != nil {
				t.Fatal(err)
			}
			bound := math.Pow(9*float64(d), float64(q))
			if float64(e.Params().D2) > bound {
				t.Fatalf("d=%d q=%d: dim %d > (9d)^q = %v", d, q, e.Params().D2, bound)
			}
		}
	}
}

func TestChebyshevDimCap(t *testing.T) {
	if _, err := NewChebyshevPM1(64, 6); err == nil {
		t.Fatal("expected dimension-cap error")
	}
	if _, err := NewChebyshevPM1(3, 1); err == nil {
		t.Fatal("d=3 must fail")
	}
	if _, err := NewChebyshevPM1(8, 0); err == nil {
		t.Fatal("q=0 must fail")
	}
}

func TestChebyshevRatioApproachesOne(t *testing.T) {
	// Theorem 2: with q = √d, log(s/d2)/log(cs/d2) = 1 − o(1/√log n);
	// numerically the ratio must increase towards 1 with d. Use the
	// analytic helper at scales where explicit construction is infeasible.
	prev := 0.0
	for _, d := range []int{16, 64, 256, 1024} {
		q := int(math.Sqrt(float64(d)))
		ratio := ChebyshevRatio(d, q)
		if ratio <= 0 || ratio >= 1 {
			t.Fatalf("d=%d: ratio %v out of (0,1)", d, ratio)
		}
		if ratio < prev {
			t.Fatalf("ratio should grow with d: %v then %v", prev, ratio)
		}
		prev = ratio
	}
	// The analytic helper must agree with the constructed embedding where
	// both are available.
	e, err := NewChebyshevPM1(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ChebyshevRatio(8, 2), e.Params().Ratio(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("analytic ratio %v != constructed %v", got, want)
	}
}

func TestChopped01Exact(t *testing.T) {
	// f(x)ᵀg(y) = number of chunks with no overlapping 1s.
	r := rand.New(rand.NewSource(4))
	for _, d := range []int{4, 10, 16, 23} {
		for _, k := range []int{1, 2, 4} {
			if k > d {
				continue
			}
			e, err := NewChopped01(d, k)
			if err != nil {
				t.Fatal(err)
			}
			p := e.Params()
			if p.S != float64(k) || p.CS != float64(k-1) {
				t.Fatalf("params = %+v", p)
			}
			for trial := 0; trial < 20; trial++ {
				ov := r.Intn(3)
				x, y := randPair(r, d, ov)
				fx, gy := e.F(x), e.G(y)
				if fx.N != p.D2 || gy.N != p.D2 {
					t.Fatalf("dim %d want %d", fx.N, p.D2)
				}
				got := bitvec.DotBits(fx, gy)
				want := chunksWithoutOverlap(x, y, e.chunks)
				if got != want {
					t.Fatalf("d=%d k=%d: dot=%d want=%d", d, k, got, want)
				}
				if ov == 0 && got != k {
					t.Fatalf("orthogonal pair must hit s=k, got %d", got)
				}
				if ov > 0 && got > k-1 {
					t.Fatalf("overlapping pair exceeded cs=k−1: %d", got)
				}
			}
		}
	}
}

func chunksWithoutOverlap(x, y *bitvec.Bits, chunks []int) int {
	pos, count := 0, 0
	for _, clen := range chunks {
		clean := 1
		for j := 0; j < clen; j++ {
			if x.Bit(pos)&y.Bit(pos) == 1 {
				clean = 0
			}
			pos++
		}
		count += clean
	}
	return count
}

func TestChopped01UnevenChunks(t *testing.T) {
	// d not divisible by k: chunk lengths must sum to d and differ by ≤1.
	e, err := NewChopped01(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range e.chunks {
		total += c
		if c != 3 && c != 4 {
			t.Fatalf("chunk length %d", c)
		}
	}
	if total != 13 {
		t.Fatalf("chunks sum to %d", total)
	}
}

func TestChopped01DimFormula(t *testing.T) {
	// For k | d the dimension is exactly k·2^{d/k}.
	e, err := NewChopped01(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Params().D2, 4*(1<<4); got != want {
		t.Fatalf("dim = %d, want %d", got, want)
	}
	// k = d gives dimension 2d (the Theorem 2 parametrisation).
	e2, err := NewChopped01(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Params().D2; got != 40 {
		t.Fatalf("k=d dim = %d, want 40", got)
	}
}

func TestChopped01Validation(t *testing.T) {
	if _, err := NewChopped01(0, 1); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewChopped01(8, 9); err == nil {
		t.Fatal("k>d must fail")
	}
	if _, err := NewChopped01(8, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := NewChopped01(64, 1); err == nil {
		t.Fatal("chunk length 64 must fail (2^64 dims)")
	}
}

func TestChopped01Ratio(t *testing.T) {
	// With k = d the ratio is 1 − Θ(1/d) (Theorem 2 case 2).
	r16, _ := NewChopped01(16, 16)
	r64, _ := NewChopped01(64, 64)
	rat16, rat64 := r16.Params().Ratio(), r64.Params().Ratio()
	if !(0 < rat16 && rat16 < rat64 && rat64 < 1) {
		t.Fatalf("ratios %v, %v should increase towards 1", rat16, rat64)
	}
}

func TestParamsC(t *testing.T) {
	e, _ := NewChopped01(10, 5)
	if got := e.Params().C(); got != 0.8 {
		t.Fatalf("C() = %v, want 0.8", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkSignedPM1_d64(b *testing.B) {
	e, _ := NewSignedPM1(64)
	r := rand.New(rand.NewSource(5))
	x, _ := randPair(r, 64, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.F(x)
	}
}

func BenchmarkChebyshev_d8q3(b *testing.B) {
	e, err := NewChebyshevPM1(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	x, _ := randPair(r, 8, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.F(x)
	}
}

func BenchmarkChopped01_d32k8(b *testing.B) {
	e, err := NewChopped01(32, 8)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	x, _ := randPair(r, 32, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.F(x)
	}
}
