// Package ips is the public API of the reproduction of
// Ahle, Pagh, Razenshteyn, Silvestri — "On the Complexity of Inner
// Product Similarity Join" (PODS 2016).
//
// It exposes the paper's machinery in five groups:
//
//   - Joins and search — exact, LSH-based, and linear-sketch engines for
//     the signed/unsigned approximate (cs, s) join of Definition 1, plus
//     maximum inner product search (MIPS) indexes built on the §4.1
//     asymmetric reduction and the §4.3 sketch recovery structure.
//   - Hardness — the three gap embeddings of Lemma 3 and the OVP
//     reduction pipeline of Lemma 2 (Theorems 1 and 2).
//   - LSH limits — the Theorem 3 staircase sequences, the Lemma 4
//     collision-grid partition, and the gap bound they imply.
//   - Upper-bound curves — the analytic ρ exponents compared in
//     Figure 2 (DATA-DEP, SIMP, MH-ALSH).
//   - Serving — the online layer behind cmd/ipsd: sharded collections,
//     batched top-k MIPS with a k-way merge, an LRU query cache, and
//     HTTP/JSON handlers (see NewServer and NewServerHandler).
//
// All randomized components take explicit 64-bit seeds and are exactly
// reproducible.
package ips

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/store"
	"repro/internal/transform"
	"repro/internal/vec"
)

// Vector is a dense real vector (alias of the internal type, so callers
// can construct values directly as ips.Vector{…}).
type Vector = vec.Vector

// Match is a reported join pair.
type Match = join.Match

// Result is a join outcome with its work counter.
type Result = join.Result

// Dot returns the inner product.
func Dot(x, y Vector) float64 { return vec.Dot(x, y) }

// Norm returns the Euclidean norm.
func Norm(x Vector) float64 { return vec.Norm(x) }

// Variant selects the signed or unsigned problem.
type Variant = core.Variant

// Signed and Unsigned are the two problem variants of the paper.
const (
	Signed   = core.Signed
	Unsigned = core.Unsigned
)

// Spec is an approximate (cs, s) join specification (Definition 1).
type Spec = core.Spec

// ExactJoin runs the brute-force join (the ground-truth engine).
func ExactJoin(P, Q []Vector, sp Spec) (Result, error) {
	return core.Exact{}.Join(P, Q, sp)
}

// LSHJoinOptions configures LSHJoin.
type LSHJoinOptions struct {
	// K concatenated hashes per table, L tables. Zero values default to
	// K=8, L=16.
	K, L int
	Seed uint64
}

func (o *LSHJoinOptions) defaults() {
	if o.K == 0 {
		o.K = 8
	}
	if o.L == 0 {
		o.L = 16
	}
}

// LSHJoin runs the hyperplane-LSH banding join (signed or unsigned per
// the spec; the unsigned variant probes q and −q, the reduction stated
// in the paper's introduction).
func LSHJoin(P, Q []Vector, sp Spec, opts LSHJoinOptions) (Result, error) {
	opts.defaults()
	e := core.LSH{
		NewFamily: func(d int) (lsh.Family, error) { return lsh.NewHyperplane(d) },
		K:         opts.K, L: opts.L, Seed: opts.Seed,
	}
	return e.Join(P, Q, sp)
}

// SketchJoin runs the §4.3 linear-sketch join (unsigned only):
// approximation c = 1/n^{1/κ} with Õ(d·n^{1−2/κ}) per-query work.
func SketchJoin(P, Q []Vector, sp Spec, kappa float64, copies int, seed uint64) (Result, error) {
	e := core.Sketch{Kappa: kappa, Copies: copies, Seed: seed}
	return e.Join(P, Q, sp)
}

// SketchJoinGuaranteedC returns 1/n^{1/κ}, the approximation the sketch
// join certifies for n data vectors.
func SketchJoinGuaranteedC(n int, kappa float64) float64 {
	return 1 / sketch.ApproxFactor(n, kappa)
}

// ---- Flat join engines ----
//
// The columnar join layer: engines operate on two FlatStores, tile the
// P×Q scan to stay cache-resident, and can spread query tiles over a
// bounded worker pool. With cs = s the exact engines are bit-identical
// to ExactJoin's reference semantics.

// JoinEngine is a pluggable join algorithm over two flat stores.
type JoinEngine = join.Engine

// JoinOpts selects the variant (signed/unsigned), the reporting mode
// (threshold vs top-k pairs per query), and an optional Runner.
type JoinOpts = join.Opts

// JoinRunner executes independent join tiles, possibly in parallel;
// *WorkerPool satisfies it.
type JoinRunner = join.Runner

// TiledJoinEngine is the exact blocked, tiled P×Q kernel.
type TiledJoinEngine = join.Tiled

// NormPrunedJoinEngine is the exact kernel with Cauchy–Schwarz tile
// skipping over a descending-norm view of P.
type NormPrunedJoinEngine = join.NormPruned

// LSHJoinEngine is the banding-index engine over the flat layout.
type LSHJoinEngine = join.LSH

// SketchJoinEngine is the §4.3 linear-sketch engine over the flat
// layout (unsigned only).
type SketchJoinEngine = join.Sketch

// FlatJoin runs the exact tiled join over two flat stores: for each
// query row of Q it reports pairs from P at (absolute, when unsigned)
// inner product ≥ cs under the promise threshold s.
func FlatJoin(P, Q *FlatStore, s, cs float64, opts JoinOpts) (Result, error) {
	return join.Tiled{}.Join(P, Q, s, cs, opts)
}

// MergeJoinResults merges partial join results sharing one index space
// (k best pairs per query for k > 0, the best pair for k == 0).
func MergeJoinResults(parts []Result, k int) Result {
	return join.MergePerQuery(parts, k)
}

// WorkerPool is the bounded parallel-for executor shared by the
// serving layer; it satisfies JoinRunner.
type WorkerPool = server.Pool

// NewWorkerPool creates a pool with the given parallelism (n <= 0
// defaults to GOMAXPROCS).
func NewWorkerPool(n int) *WorkerPool { return server.NewPool(n) }

// CheckGuarantee verifies a join result against Definition 1 by brute
// force; nil means the (cs, s) guarantee holds.
func CheckGuarantee(P, Q []Vector, res Result, sp Spec) error {
	return core.CheckGuarantee(P, Q, res, sp)
}

// Recall scores an approximate result against an exact one.
func Recall(exact, approx Result, s float64) float64 {
	return join.Recall(exact, approx, s)
}

// MIPSIndex answers maximum inner product search queries with the §4.1
// construction: data from the unit ball is lifted to the unit sphere by
// the Neyshabur–Srebro asymmetric map and indexed under hyperplane LSH.
// Queries of any norm are accepted — scaling a query never changes the
// MIPS argmax, so probes are rescaled into the U-ball internally.
type MIPSIndex struct {
	data  []Vector
	index *lsh.Index
	tr    *transform.Simple
	u     float64
}

// MIPSOptions configures NewMIPSIndex.
type MIPSOptions struct {
	// U is the query-ball radius (default 1).
	U float64
	// K, L are the banding parameters (defaults 8, 16).
	K, L int
	Seed uint64
}

// NewMIPSIndex builds the index over data vectors with ‖p‖ ≤ 1.
func NewMIPSIndex(data []Vector, opts MIPSOptions) (*MIPSIndex, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("ips: empty data set")
	}
	if opts.U == 0 {
		opts.U = 1
	}
	if opts.K == 0 {
		opts.K = 8
	}
	if opts.L == 0 {
		opts.L = 16
	}
	d := len(data[0])
	tr, err := transform.NewSimple(d, opts.U)
	if err != nil {
		return nil, err
	}
	inner, err := lsh.NewHyperplane(tr.OutputDim())
	if err != nil {
		return nil, err
	}
	fam, err := lsh.NewAsymmetric("simple-alsh",
		lsh.MapPair{Data: tr.Data, Query: tr.Query}, inner)
	if err != nil {
		return nil, err
	}
	ix, err := lsh.NewIndex(fam, opts.K, opts.L, opts.Seed)
	if err != nil {
		return nil, err
	}
	ix.InsertAll(data)
	return &MIPSIndex{data: data, index: ix, tr: tr, u: opts.U}, nil
}

// probe rescales q into the U-ball (MIPS is scale-invariant in q).
func (m *MIPSIndex) probe(q Vector) Vector {
	if n := vec.Norm(q); n > m.u {
		return vec.Scaled(q, (1-1e-12)*m.u/n)
	}
	return q
}

// Query returns the index and inner product of the best colliding
// candidate, or (-1, 0) when nothing collides.
func (m *MIPSIndex) Query(q Vector) (int, float64) {
	return m.index.Query(m.probe(q), func(p Vector) float64 { return vec.Dot(p, q) })
}

// TopK returns up to k candidate indices ordered by decreasing inner
// product with q (exact scores over the colliding candidates).
func (m *MIPSIndex) TopK(q Vector, k int) []Match {
	if k <= 0 {
		panic(fmt.Sprintf("ips: TopK k=%d must be positive", k))
	}
	cands := m.index.Candidates(m.probe(q))
	ms := make([]Match, 0, len(cands))
	for _, pi := range cands {
		ms = append(ms, Match{PIdx: pi, Value: vec.Dot(m.data[pi], q)})
	}
	// Insertion sort by value (candidate sets are small).
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Value > ms[j-1].Value; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	if len(ms) > k {
		ms = ms[:k]
	}
	return ms
}

// BruteMIPS returns the exact MIPS answer (argmax of pᵀq, or of |pᵀq|
// when unsigned is true).
func BruteMIPS(data []Vector, q Vector, unsigned bool) (int, float64) {
	best, bv := -1, 0.0
	for i, p := range data {
		v := vec.Dot(p, q)
		if unsigned && v < 0 {
			v = -v
		}
		if best == -1 || v > bv {
			best, bv = i, v
		}
	}
	return best, bv
}

// FlatStore is the columnar vector store behind every brute-force scan
// in the repo: n×d vectors packed into one contiguous float64 array
// with precomputed norms, scanned by blocked multi-accumulator kernels.
// Use it when issuing many exact scans over a fixed data set — the
// contiguous layout is typically several times faster than a
// []ips.Vector scan and returns bit-identical scores.
type FlatStore = flat.Store

// FlatHit is one flat-scan answer: row index and (absolute, for
// unsigned) inner product.
type FlatHit = flat.Hit

// NewFlatStore packs data into a columnar store. All vectors must share
// one positive dimension.
func NewFlatStore(data []Vector) (*FlatStore, error) { return flat.FromVectors(data) }

// FlatTopK returns the exact top-k over a flat store under the
// canonical (score descending, index ascending) ordering, splitting the
// scan over `workers` goroutines when workers > 1 and the store is
// large enough.
func FlatTopK(s *FlatStore, q Vector, k int, unsigned bool, workers int) ([]FlatHit, error) {
	return s.TopK(q, k, unsigned, workers)
}

// FlatTopKMulti answers one exact top-k query per row of queries over a
// single sweep of the store, through the register-blocked multi-query
// (GEMM-style) tile kernels: each data row loaded from memory is
// scored against a whole query tile, so a batch runs at a fraction of
// the per-query cost of FlatTopK while every answer stays bit-identical
// to it (ordering, tie-breaks, and NaN rejection included).
func FlatTopKMulti(s *FlatStore, queries []Vector, k int, unsigned bool) ([][]FlatHit, error) {
	qs, err := flat.FromVectors(queries)
	if err != nil {
		return nil, err
	}
	return s.TopKMulti(qs, k, unsigned)
}

// NormRangeMIPS is the norm-banded variant of the §4.1 index: data is
// partitioned into geometric norm ranges, each with its own ALSH, which
// keeps equation (3)'s exponent strong under skewed norms.
type NormRangeMIPS = lsh.NormRangeMIPS

// NormRangeOptions configures NewNormRangeMIPS.
type NormRangeOptions = lsh.NormRangeOptions

// NewNormRangeMIPS builds the norm-banded MIPS index.
func NewNormRangeMIPS(data []Vector, opts NormRangeOptions) (*NormRangeMIPS, error) {
	return lsh.NewNormRangeMIPS(data, opts)
}

// MultiProbeIndex is the query-directed multi-probe hyperplane index:
// probing low-margin bit flips recovers recall at far fewer tables.
type MultiProbeIndex = lsh.MultiProbe

// NewMultiProbeIndex builds a multi-probe index with K hyperplanes per
// table, L tables and `probes` extra bucket probes per table per query.
func NewMultiProbeIndex(dim, k, l, probes int, seed uint64) (*MultiProbeIndex, error) {
	return lsh.NewMultiProbe(dim, k, l, probes, seed)
}

// SketchMIPS answers unsigned c-MIPS queries with the §4.3 trie
// recovery structure (approximation 1/n^{1/κ}).
type SketchMIPS struct {
	rec *sketch.Recoverer
}

// NewSketchMIPS builds the structure. copies boosts the per-node success
// probability (use odd values; 9 is a solid default).
func NewSketchMIPS(data []Vector, kappa float64, copies int, seed uint64) (*SketchMIPS, error) {
	rec, err := sketch.NewRecoverer(data, kappa, copies, seed)
	if err != nil {
		return nil, err
	}
	return &SketchMIPS{rec: rec}, nil
}

// Query returns the recovered index and its exact |pᵀq|.
func (m *SketchMIPS) Query(q Vector) (int, float64) { return m.rec.Query(q) }

// ---- Serving layer (cmd/ipsd) ----
//
// The online subsystem: a concurrent, sharded inner-product search and
// join server. Collections wrap store.Relation snapshots, shard their
// data across goroutine-owned indexes, fan queries out with a k-way
// merge, memoize results in an LRU invalidated on ingest, and execute
// batches on a worker pool.

// ServerConfig configures NewServer.
type ServerConfig = server.Config

// Server is the serving-layer core (collections, cache, worker pool).
type Server = server.Server

// ServerIndexSpec selects the per-shard index engine of a collection
// ("exact", "normscan", "alsh" or "sketch", plus engine parameters).
type ServerIndexSpec = server.IndexSpec

// SearchHit is one served answer: record ID and inner product.
type SearchHit = server.Hit

// ServerStats is the /stats payload (per-shard sizes, query counts,
// latency percentiles, cache counters).
type ServerStats = server.Stats

// ServerJoinRequest asks the serving layer for an approximate (cs, s)
// join between two collections (threshold or top-k-pairs mode, any
// flat engine), fanned out across shard pairs on the worker pool.
type ServerJoinRequest = server.JoinRequest

// ServerJoinResponse is the served join outcome in record-ID space.
type ServerJoinResponse = server.JoinResponse

// Record is a stored tuple: ID, vector payload, optional attributes.
type Record = store.Record

// NewServer creates a serving core; see ServerConfig for defaults.
// For a durable server (ServerConfig.DataDir set) use OpenServer so
// persisted collections are recovered before serving starts.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// OpenServer creates a serving core and, when cfg.DataDir is set,
// recovers every persisted collection (manifest + newest valid segment
// snapshot + WAL tail replay) before returning. Ingests into a durable
// server append to a per-collection write-ahead log — under the
// configured fsync policy — before they become visible, and the log is
// compacted into columnar segment snapshots in the background.
func OpenServer(cfg ServerConfig) (*Server, error) { return server.Open(cfg) }

// NewServerHandler wires a Server's HTTP/JSON API (PUT
// /collections/{name}, DELETE /collections/{name}, POST
// /collections/{name}/search, POST /collections/{a}/join/{b}, POST
// /collections/{name}/join (self-join), POST /join, GET /healthz,
// GET /stats).
func NewServerHandler(s *Server) http.Handler { return server.NewHandler(s) }
