// Benchmarks regenerating the paper's evaluation artifacts. One bench
// family per table/figure (see DESIGN.md's experiment index):
//
//	BenchmarkTable1_*   — the Lemma 3 embeddings and the two permissible
//	                      subquadratic algorithms behind Table 1.
//	BenchmarkFigure1_*  — the Lemma 4 grid partition and empirical-gap
//	                      machinery behind Figure 1.
//	BenchmarkFigure2_*  — the analytic ρ curves and their Monte-Carlo
//	                      validation behind Figure 2.
//	BenchmarkTheorem3_* — the staircase constructions of Theorem 3.
//	BenchmarkCrossover_*— the exact/LSH/sketch work crossover (ablation).
//
// Run with: go test -bench=. -benchmem
package ips

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/grid"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/ovp"
	"repro/internal/seqs"
	"repro/internal/sketch"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// --- Table 1: hard side (embeddings + OVP pipeline) ---

func BenchmarkTable1_E1_Pipeline(b *testing.B) {
	rng := xrand.New(1)
	const d = 32
	e, err := embed.NewSignedPM1(d)
	if err != nil {
		b.Fatal(err)
	}
	in, _ := ovp.Planted(rng, 24, 24, d, 0.2, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ovp.SolveViaSignsEmbedding(in, e); !ok {
			b.Fatal("planted pair lost")
		}
	}
}

func BenchmarkTable1_E2_Pipeline(b *testing.B) {
	for _, q := range []int{1, 2} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			rng := xrand.New(2)
			const d = 16
			e, err := embed.NewChebyshevPM1(d, q)
			if err != nil {
				b.Fatal(err)
			}
			in, _ := ovp.Planted(rng, 16, 16, d, 0.2, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ovp.SolveViaSignsEmbedding(in, e); !ok {
					b.Fatal("planted pair lost")
				}
			}
		})
	}
}

func BenchmarkTable1_E3_Pipeline(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := xrand.New(3)
			const d = 16
			e, err := embed.NewChopped01(d, k)
			if err != nil {
				b.Fatal(err)
			}
			in, _ := ovp.Planted(rng, 24, 24, d, 0.2, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ovp.SolveViaBitsEmbedding(in, e); !ok {
					b.Fatal("planted pair lost")
				}
			}
		})
	}
}

// --- Table 1: permissible side (the two subquadratic algorithms) ---

func BenchmarkTable1_SketchJoin(b *testing.B) {
	for _, n := range []int{256, 1024} {
		for _, kappa := range []float64{3, 4} {
			b.Run(fmt.Sprintf("n=%d/kappa=%g", n, kappa), func(b *testing.B) {
				rng := xrand.New(uint64(n))
				P, Q, _ := dataset.Planted(rng, n, 8, 16, 0.95, []int{0, 4})
				j := join.SketchJoiner{Kappa: kappa, Copies: 5, Seed: 5}
				s := 0.9
				cs := s * j.GuaranteedC(n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := j.Unsigned(P, Q, s, cs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTable1_MinHashJoin(b *testing.B) {
	for _, n := range []int{512, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n))
			const d, avg = 256, 12
			P := dataset.BinarySets(rng, n, d, avg, 0.05)
			Q := dataset.BinarySets(rng, 16, d, avg, 0.05)
			fam, err := lsh.NewMinHash(d)
			if err != nil {
				b.Fatal(err)
			}
			j := join.LSHJoiner{Family: fam, K: 3, L: 8, Seed: 7}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Unsigned(P, Q, avg/2, avg/4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 1: grid partition and Lemma 4 gap estimation ---

func BenchmarkFigure1_Partition(b *testing.B) {
	const n = 1023
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sqs, err := grid.Squares(n)
		if err != nil {
			b.Fatal(err)
		}
		if len(sqs) == 0 {
			b.Fatal("empty partition")
		}
	}
}

func BenchmarkFigure1_Locate(b *testing.B) {
	const n = 1023
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := grid.Locate(n, i%512, 512+(i%511)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1_EmpiricalGap(b *testing.B) {
	st, err := seqs.Case1_1D(0.001, 0.5, 512)
	if err != nil {
		b.Fatal(err)
	}
	fam, err := lsh.NewHyperplane(1)
	if err != nil {
		b.Fatal(err)
	}
	n := st.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.EmpiricalGap(fam, st.P[:n], st.Q[:n], 200, 11)
	}
}

func BenchmarkFigure1_MassAccounting(b *testing.B) {
	st, err := seqs.Case1_1D(1.0/256, 0.5, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	fam, err := lsh.NewHyperplane(1)
	if err != nil {
		b.Fatal(err)
	}
	P, Q := st.P[:15], st.Q[:15]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ma, err := grid.AccountMasses(fam, P, Q, 200, 13)
		if err != nil {
			b.Fatal(err)
		}
		if err := ma.VerifyProof(1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 2: ρ curves ---

func BenchmarkFigure2_Curves(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := lsh.Figure2Series(0.7, 100)
		if len(pts) != 100 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure2_MCCollision(b *testing.B) {
	fam, err := lsh.NewHyperplane(8)
	if err != nil {
		b.Fatal(err)
	}
	p := vec.Vector{1, 0, 0, 0, 0, 0, 0, 0}
	q := vec.Vector{0.6, 0.8, 0, 0, 0, 0, 0, 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lsh.EstimateCollision(fam, p, q, 100, uint64(i))
	}
}

// --- Theorem 3: staircase constructions ---

func BenchmarkTheorem3_Case1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := seqs.Case1(4, 0.5, 0.5, 64)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTheorem3_Case2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := seqs.Case2(4, 1, 0.5, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem3_Case3RS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := seqs.Case3(0.5, 0.5, 72, seqs.FamilyReedSolomon, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Crossover ablation: exact vs LSH vs sketch joins ---

func BenchmarkCrossover_Exact(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n))
			P, Q, _ := dataset.Planted(rng, n, 32, 24, 0.95, []int{0, 8})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				join.NaiveSigned(P, Q, 0.9)
			}
		})
	}
}

func BenchmarkCrossover_LSH(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n))
			P, Q, _ := dataset.Planted(rng, n, 32, 24, 0.95, []int{0, 8})
			fam, err := lsh.NewHyperplane(24)
			if err != nil {
				b.Fatal(err)
			}
			j := join.LSHJoiner{Family: fam, K: 10, L: 8, Seed: 3}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Signed(P, Q, 0.9, 0.45); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblation_RecovererCopies sweeps the median-boosting copy
// count of the §4.3 trie — the paper's O(log 1/δ) repetition knob.
func BenchmarkAblation_RecovererCopies(b *testing.B) {
	rng := xrand.New(40)
	const n, d = 256, 16
	P, Q, _ := dataset.Planted(rng, n, 8, d, 0.95, []int{0})
	for _, copies := range []int{1, 5, 9} {
		b.Run(fmt.Sprintf("copies=%d", copies), func(b *testing.B) {
			rec, err := sketch.NewRecoverer(P, 3, copies, 41)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Query(Q[i%len(Q)])
			}
		})
	}
}

// BenchmarkAblation_BandingShape sweeps (K, L) at fixed K·L budget —
// the precision/recall trade of the banding index.
func BenchmarkAblation_BandingShape(b *testing.B) {
	rng := xrand.New(42)
	const n, d = 2000, 24
	P, Q, _ := dataset.Planted(rng, n, 16, d, 0.95, []int{0, 8})
	for _, shape := range [][2]int{{4, 24}, {8, 12}, {12, 8}} {
		b.Run(fmt.Sprintf("K=%d/L=%d", shape[0], shape[1]), func(b *testing.B) {
			fam, err := lsh.NewHyperplane(d)
			if err != nil {
				b.Fatal(err)
			}
			j := join.LSHJoiner{Family: fam, K: shape[0], L: shape[1], Seed: 43}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Signed(P, Q, 0.9, 0.45); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MultiProbe compares plain banding (probes=0)
// against multi-probe queries at reduced table counts.
func BenchmarkAblation_MultiProbe(b *testing.B) {
	rng := xrand.New(44)
	const n, d = 2000, 24
	data := make([]vec.Vector, n)
	for i := range data {
		data[i] = vec.Vector(rng.UnitVec(d))
	}
	q := vec.Vector(rng.UnitVec(d))
	for _, probes := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("probes=%d", probes), func(b *testing.B) {
			mp, err := lsh.NewMultiProbe(d, 12, 4, probes, 45)
			if err != nil {
				b.Fatal(err)
			}
			mp.InsertAll(data)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mp.Query(q, func(p vec.Vector) float64 { return vec.Dot(p, q) })
			}
		})
	}
}

// BenchmarkAblation_PackedVsFloatDot measures the bit-packed kernel
// against the dense float dot at the paper's {−1,1} domain.
func BenchmarkAblation_PackedVsFloatDot(b *testing.B) {
	rng := xrand.New(46)
	const d = 1024
	sx, sy := bitvec.NewSigns(d), bitvec.NewSigns(d)
	for i := 0; i < d; i++ {
		sx.SetSign(i, rng.Sign())
		sy.SetSign(i, rng.Sign())
	}
	fx, fy := vec.Vector(sx.Floats()), vec.Vector(sy.Floats())
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bitvec.DotSigns(sx, sy)
		}
	})
	b.Run("float", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vec.Dot(fx, fy)
		}
	})
}

func BenchmarkCrossover_SketchBuildAndQuery(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(uint64(n))
			P, Q, _ := dataset.Planted(rng, n, 32, 24, 0.95, []int{0, 8})
			rec, err := sketch.NewRecoverer(P, 3, 5, 9)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Query(Q[i%len(Q)])
			}
		})
	}
}
