#!/usr/bin/env bash
# Restart-cycle smoke test for the durable storage subsystem:
#
#   1. start ipsd with a data directory (-fsync always, so every
#      acknowledged write is durable against kill -9)
#   2. ingest 100k vectors through loadgen, then apply a deterministic
#      pass of upsert/delete batches (replaced vectors, tombstones) and
#      verify the sharded answers against a local exact scan over the
#      post-mutation live set
#   3. kill -9 the server mid-flight state (no graceful shutdown)
#   4. restart ipsd on the same data directory
#   5. re-run loadgen with -skip-ingest: it recomputes the same
#      mutation pass locally, so the recovered collection must hold
#      exactly the post-mutation live set — upserts applied, deletes
#      gone — and answer every query bit-identically to the pre-kill
#      exact scan
#
# Usage: scripts/restart_smoke.sh [n] [q] [mutate_ops] [precision]
#
# With precision=int8 (or f32) the cycle runs against a quantized
# collection: the restart must recover the quantization scales exactly
# from the WAL/segments, or the re-ranked answers drift and the
# -skip-ingest verification fails.
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-100000}"
Q="${2:-200}"
MUTATE="${3:-150}"
PRECISION="${4:-f64}"
ADDR="127.0.0.1:7177"
DATA="$(mktemp -d)"
BIN="$(mktemp -d)"
PID=""
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true; rm -rf "$DATA" "$BIN"' EXIT

go build -o "$BIN/ipsd" ./cmd/ipsd
go build -o "$BIN/loadgen" ./cmd/loadgen

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "restart_smoke: server never became healthy" >&2
    exit 1
}

echo "=== starting ipsd -data $DATA -fsync always"
"$BIN/ipsd" -addr "$ADDR" -data "$DATA" -fsync always &
PID=$!
wait_healthy

echo "=== ingesting $N vectors (precision=$PRECISION) + $MUTATE upsert/delete batches + verifying against local exact scan"
"$BIN/loadgen" -addr "$ADDR" -n "$N" -q "$Q" -d 16 -k 10 -shards 4 -precision "$PRECISION" -mutate-pass "$MUTATE"

echo "=== kill -9 $PID (no graceful shutdown)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "=== restarting ipsd on the same data directory"
"$BIN/ipsd" -addr "$ADDR" -data "$DATA" -fsync always &
PID=$!
wait_healthy

echo "=== verifying recovered data answers identically (no re-ingest, mutation pass recomputed locally)"
"$BIN/loadgen" -addr "$ADDR" -n "$N" -q "$Q" -d 16 -k 10 -shards 4 -precision "$PRECISION" -skip-ingest -mutate-pass "$MUTATE"

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "=== restart smoke OK: post-mutation live set survived kill -9 bit-identically"
