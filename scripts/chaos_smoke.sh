#!/usr/bin/env bash
# Chaos smoke test for the failure-domain machinery: a seeded fsync
# fault schedule fires mid-traffic and the server must degrade, keep
# serving reads, repair itself, and come out bit-identical.
#
#   1. start ipsd with a deterministic fault schedule on WAL fsyncs
#      (-fault-ops sync -fault-path wal-: after FAULT_AFTER clean syncs
#      the next FAULT_COUNT fail with EIO, then the schedule heals —
#      replayable from the same -fault-seed)
#   2. drive ingest + a mutation storm through loadgen with client-side
#      retries: every fault latches the WAL and degrades the collection
#      to read-only 503s, the retry backoff rides out the window, and
#      the background repair probe re-activates it
#   3. while degraded, reads must keep answering 200 off the last
#      snapshots — loadgen's exact-scan verification fails the run on
#      any lost or phantom write
#   4. require /readyz to converge back to 200 and /metrics to show at
#      least one completed repair (proof the chaos actually fired)
#   5. kill -9, restart WITHOUT fault injection on the same directory,
#      and re-verify with -skip-ingest: recovery must reproduce the
#      post-mutation live set bit-identically
#
# Usage: scripts/chaos_smoke.sh [n] [q] [mutate_ops] [fault_count] [fault_seed]
set -euo pipefail

cd "$(dirname "$0")/.."

N="${1:-50000}"
Q="${2:-200}"
MUTATE="${3:-150}"
FAULT_COUNT="${4:-3}"
FAULT_SEED="${5:-7}"
FAULT_AFTER=40
ADDR="127.0.0.1:7178"
DATA="$(mktemp -d)"
BIN="$(mktemp -d)"
PID=""
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true; rm -rf "$DATA" "$BIN"' EXIT

go build -o "$BIN/ipsd" ./cmd/ipsd
go build -o "$BIN/loadgen" ./cmd/loadgen

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos_smoke: server never became healthy" >&2
    exit 1
}

wait_ready() {
    for _ in $(seq 1 200); do
        if curl -sf "http://$ADDR/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos_smoke: server never became ready again (repair probe stuck?)" >&2
    curl -s "http://$ADDR/stats" >&2 || true
    exit 1
}

echo "=== starting ipsd with seeded WAL-fsync fault schedule (after=$FAULT_AFTER count=$FAULT_COUNT seed=$FAULT_SEED)"
"$BIN/ipsd" -addr "$ADDR" -data "$DATA" -fsync always -scrub-interval 500ms \
    -fault-ops sync -fault-path wal- -fault-after "$FAULT_AFTER" \
    -fault-count "$FAULT_COUNT" -fault-seed "$FAULT_SEED" &
PID=$!
wait_healthy

echo "=== ingest $N + mutation storm with client retries (faults fire mid-traffic)"
"$BIN/loadgen" -addr "$ADDR" -n "$N" -q "$Q" -d 16 -k 10 -shards 4 \
    -chunk 500 -mutate-pass "$MUTATE" -retries 10

echo "=== waiting for /readyz to converge (degraded window repaired)"
wait_ready

REPAIRS="$(curl -s "http://$ADDR/metrics" | awk '/^ipsd_collection_repairs_total\{collection="bench"\}/ {print $2}')"
if [ -z "$REPAIRS" ] || [ "$REPAIRS" -lt 1 ]; then
    echo "chaos_smoke: no repair recorded — the fault schedule never fired (repairs=${REPAIRS:-missing})" >&2
    curl -s "http://$ADDR/metrics" | grep ipsd_collection >&2 || true
    exit 1
fi
echo "=== chaos fired: $REPAIRS repair(s) recorded, collection active again"

echo "=== kill -9 $PID (no graceful shutdown)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "=== restarting without fault injection on the same directory"
"$BIN/ipsd" -addr "$ADDR" -data "$DATA" -fsync always &
PID=$!
wait_healthy

echo "=== verifying recovered data answers identically (no re-ingest)"
"$BIN/loadgen" -addr "$ADDR" -n "$N" -q "$Q" -d 16 -k 10 -shards 4 \
    -skip-ingest -mutate-pass "$MUTATE"

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "=== chaos smoke OK: degraded, repaired, and recovered bit-identically through $FAULT_COUNT injected fsync faults"
