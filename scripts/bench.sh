#!/usr/bin/env bash
# Runs the Go benchmarks and writes the results as JSON so the repo's
# performance trajectory can be tracked across PRs (BENCH_<n>.json).
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Environment:
#   BENCH_FILTER   benchmark regexp (default: the serving-layer suite)
#   BENCH_TIME     -benchtime value (default 200ms)
#   BENCH_PKGS     packages to bench (default ./internal/server/)
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_8.json}"
FILTER="${BENCH_FILTER:-BenchmarkServer|BenchmarkMergeTopK|BenchmarkFlat|BenchmarkTopKMasked|BenchmarkJoin|BenchmarkWAL|BenchmarkSegment|BenchmarkRecover}"
TIME="${BENCH_TIME:-200ms}"
PKGS="${BENCH_PKGS:-./internal/server/ ./internal/flat/ ./internal/join/ ./internal/persist/}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$FILTER" -benchtime "$TIME" -benchmem $PKGS | tee "$RAW"

# Convert `BenchmarkName-N  iters  ns/op  B/op  allocs/op` lines to JSON.
awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
BEGIN { print "{"; printf "  \"commit\": \"%s\",\n  \"benchmarks\": [\n", commit; n = 0 }
/^Benchmark/ {
    if (n++) printf ",\n"
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "MB/s")      printf ", \"mb_per_s\": %s", $i
        if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
        if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
    }
    printf "}"
}
END { print "\n  ]\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT"

# Report-only regression comparison against the most recent previous
# BENCH_*.json (benchstat-style; never gates).
PREV="$(ls BENCH_*.json 2>/dev/null | grep -v "^$OUT\$" | sort -V | tail -1 || true)"
if [ -n "${PREV:-}" ]; then
    go run ./cmd/benchcmp "$PREV" "$OUT" || true
fi
