package ips

import (
	"repro/internal/bitvec"
	"repro/internal/embed"
	"repro/internal/grid"
	"repro/internal/lsh"
	"repro/internal/ovp"
	"repro/internal/seqs"
)

// This file exposes the paper's theory artifacts: gap embeddings
// (Lemma 3), the OVP reduction (Lemma 2 / Theorems 1–2), the staircase
// sequences (Theorem 3), the collision-grid partition (Lemma 4 /
// Figure 1), and the analytic ρ curves (Figure 2 / §4.1).

// BitVec is a packed {0,1} vector (OVP inputs, embedding-3 outputs).
type BitVec = bitvec.Bits

// SignVec is a packed {−1,+1} vector (embedding-1/2 outputs).
type SignVec = bitvec.Signs

// EmbeddingParams describes a (d1, d2, cs, s) gap embedding.
type EmbeddingParams = embed.Params

// NewSignedEmbedding returns Lemma 3 embedding 1: signed
// (d, 4d−4, 0, 4) into {−1,1}.
func NewSignedEmbedding(d int) (*embed.SignedPM1, error) { return embed.NewSignedPM1(d) }

// NewChebyshevEmbedding returns Lemma 3 embedding 2: unsigned
// (d, ≤(9d)^q, (2d)^q, (2d)^q·T_q(1+1/d)) into {−1,1}.
func NewChebyshevEmbedding(d, q int) (*embed.ChebyshevPM1, error) {
	return embed.NewChebyshevPM1(d, q)
}

// NewChoppedEmbedding returns Lemma 3 embedding 3: unsigned
// (d, ≤k·2^⌈d/k⌉, k−1, k) into {0,1}.
func NewChoppedEmbedding(d, k int) (*embed.Chopped01, error) {
	return embed.NewChopped01(d, k)
}

// OVPInstance is an Orthogonal Vectors instance.
type OVPInstance = ovp.Instance

// OVPPair indexes a found pair.
type OVPPair = ovp.Pair

// SolveOVPNaive scans all pairs (the baseline the OVP conjecture says
// cannot be beaten strongly subquadratically for d = ω(log n)).
func SolveOVPNaive(in *OVPInstance) (OVPPair, bool) { return ovp.SolveNaive(in) }

// SolveOVPViaEmbedding runs the Lemma 2 pipeline: OVP → gap embedding →
// (cs, s) join, with the chopped {0,1} embedding.
func SolveOVPViaEmbedding(in *OVPInstance, e *embed.Chopped01) (OVPPair, bool) {
	return ovp.SolveViaBitsEmbedding(in, e)
}

// Staircase is a Theorem 3 hard sequence pair.
type Staircase = seqs.Staircase

// StaircaseCase1 builds the geometric staircase (Theorem 3 case 1);
// valid for signed and unsigned IPS.
func StaircaseCase1(d int, s, c, u float64) (*Staircase, error) { return seqs.Case1(d, s, c, u) }

// StaircaseCase2 builds the affine staircase (case 2, signed only).
func StaircaseCase2(d int, s, c, u float64) (*Staircase, error) { return seqs.Case2(d, s, c, u) }

// StaircaseCase3 builds the binary-tree staircase (case 3) over the
// deterministic Reed–Solomon incoherent family.
func StaircaseCase3(s, c, u float64, seed uint64) (*Staircase, error) {
	return seqs.Case3(s, c, u, seqs.FamilyReedSolomon, seed)
}

// LSHGapBound is the Lemma 4 upper bound on P1 − P2 achievable by any
// (asymmetric) LSH on a staircase of length n.
func LSHGapBound(n int) float64 { return grid.GapBound(n) }

// RenderFigure1 draws the Lemma 4 square partition for an
// n = 2^ℓ − 1 grid as ASCII art (n = 15 reproduces the paper's figure).
func RenderFigure1(n int) (string, error) { return grid.Render(n) }

// RhoDataDep is equation (3): the paper's §4.1 exponent.
func RhoDataDep(c, s float64) float64 { return lsh.RhoDataDep(c, s) }

// RhoSimple is the SIMPLE-ALSH exponent of Neyshabur–Srebro.
func RhoSimple(c, s float64) float64 { return lsh.RhoSimple(c, s) }

// RhoMH is the MH-ALSH exponent of Shrivastava–Li (binary data).
func RhoMH(c, s float64) float64 { return lsh.RhoMH(c, s) }

// Figure2Point is one sample of the Figure 2 comparison.
type Figure2Point = lsh.Figure2Point

// Figure2 computes the three ρ curves of the paper's Figure 2 on a
// uniform grid of s values for approximation factor c.
func Figure2(c float64, points int) []Figure2Point { return lsh.Figure2Series(c, points) }
