package ips

// Cross-module integration tests: each one exercises a full pipeline
// spanning several internal packages, the way a downstream user would
// compose them.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/vecio"
	"repro/internal/xrand"
)

// TestIntegration_StorePipelineWithALSH runs the database-operator
// pipeline (Scan → SimJoin → Filter → Limit) over an ALSH search
// structure and cross-checks every emitted tuple.
func TestIntegration_StorePipelineWithALSH(t *testing.T) {
	rng := xrand.New(1)
	P, Q, _ := dataset.Planted(rng, 150, 20, 16, 0.95, []int{0, 5, 10, 15})
	itemRecs := make([]store.Record, len(P))
	for i, p := range P {
		itemRecs[i] = store.Record{ID: i, Vec: p}
	}
	queryRecs := make([]store.Record, len(Q))
	for i, q := range Q {
		queryRecs[i] = store.Record{ID: i, Vec: q}
	}
	items, err := store.NewRelation("items", itemRecs)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := store.NewRelation("queries", queryRecs)
	if err != nil {
		t.Fatal(err)
	}
	pipeline := &store.Limit{
		N: 3,
		Input: &store.Filter{
			Pred: func(tp store.Tuple) bool { return tp.Value >= 0.9 },
			Input: &store.SimJoin{
				Input:   store.NewScan(queries),
				Right:   items,
				Spec:    core.Spec{Variant: core.Signed, S: 0.9, C: 0.5},
				Builder: core.ALSHSearch{K: 6, L: 32, Seed: 2},
			},
		},
	}
	tuples, err := store.Collect(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 {
		t.Fatalf("pipeline emitted %d tuples, want 3", len(tuples))
	}
	for _, tp := range tuples {
		if got := vec.Dot(tp.Left.Vec, tp.Right.Vec); got < 0.9 {
			t.Fatalf("tuple below filter threshold: %v", got)
		}
	}
}

// TestIntegration_SymmetricFamilyJoin runs a signed join where data and
// query domains coincide, through the §4.2 symmetric family — the
// scenario the paper's symmetric-LSH section is about.
func TestIntegration_SymmetricFamilyJoin(t *testing.T) {
	rng := xrand.New(3)
	const d = 4
	// Fixed-point friendly vectors in the unit ball.
	quantize := func(v vec.Vector) vec.Vector {
		for i := range v {
			v[i] = float64(int(v[i]*64)) / 64
		}
		return v
	}
	P := make([]vec.Vector, 60)
	for i := range P {
		P[i] = quantize(vec.Scaled(vec.Vector(rng.UnitVec(d)), 0.4))
	}
	Q := make([]vec.Vector, 8)
	for i := range Q {
		Q[i] = quantize(vec.Scaled(vec.Vector(rng.UnitVec(d)), 0.4))
	}
	// Plant strong partners (distinct from the queries themselves).
	for qi := 0; qi < len(Q); qi += 2 {
		planted := vec.Scaled(Q[qi], 0.9)
		P[qi] = quantize(planted)
	}
	fam, err := lsh.NewSymmetricIPS(d, 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	j := join.LSHJoiner{Family: fam, K: 2, L: 48, Seed: 4}
	const s, cs = 0.1, 0.05
	res, err := j.Signed(P, Q, s, cs)
	if err != nil {
		t.Fatal(err)
	}
	exact := join.NaiveSigned(P, Q, s)
	if r := join.Recall(exact, res, s); r < 0.9 {
		t.Fatalf("symmetric-family join recall %v", r)
	}
}

// TestIntegration_SaveLoadDeterminism persists a workload with vecio
// and verifies the reloaded join is bit-identical.
func TestIntegration_SaveLoadDeterminism(t *testing.T) {
	rng := xrand.New(5)
	P, Q, _ := dataset.Planted(rng, 80, 10, 8, 0.95, []int{1})
	var bufP, bufQ bytes.Buffer
	if err := vecio.WriteDense(&bufP, P); err != nil {
		t.Fatal(err)
	}
	if err := vecio.WriteDense(&bufQ, Q); err != nil {
		t.Fatal(err)
	}
	P2, err := vecio.ReadDense(&bufP)
	if err != nil {
		t.Fatal(err)
	}
	Q2, err := vecio.ReadDense(&bufQ)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Variant: Signed, S: 0.9, C: 0.5}
	r1, err := LSHJoin(P, Q, sp, LSHJoinOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LSHJoin(P2, Q2, sp, LSHJoinOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Matches) != len(r2.Matches) || r1.Compared != r2.Compared {
		t.Fatalf("reloaded join differs: %d/%d vs %d/%d",
			len(r1.Matches), r1.Compared, len(r2.Matches), r2.Compared)
	}
	for i := range r1.Matches {
		if r1.Matches[i] != r2.Matches[i] {
			t.Fatalf("match %d differs", i)
		}
	}
}

// TestIntegration_NormRangeOnLatentFactors exercises the norm-banded
// MIPS index against brute force on the recommender workload.
func TestIntegration_NormRangeOnLatentFactors(t *testing.T) {
	rng := xrand.New(7)
	lf := dataset.NewLatentFactor(rng, 500, 25, 16, 1.0)
	lf.ScaleItemsToUnitBall()
	nr, err := lsh.NewNormRangeMIPS(lf.Items, lsh.NormRangeOptions{K: 6, L: 24, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	for _, u := range lf.Users {
		got, val := nr.Query(u)
		exact, exactVal := BruteMIPS(lf.Items, u, false)
		if got == exact || val >= 0.7*exactVal {
			good++
		}
	}
	if frac := float64(good) / float64(len(lf.Users)); frac < 0.7 {
		t.Fatalf("norm-range index acceptable on only %v of queries", frac)
	}
}

// TestFlatTopKMultiExport checks the public batch entry point: the
// multi-query sweep must answer exactly like per-query FlatTopK.
func TestFlatTopKMultiExport(t *testing.T) {
	data := []Vector{{1, 0}, {0, 1}, {0.5, 0.5}, {1, 0}, {0, 0}}
	s, err := NewFlatStore(data)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Vector{{1, 0}, {0, 2}, {0, 0}, {-1, 1}}
	multi, err := FlatTopKMulti(s, queries, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, err := FlatTopK(s, q, 3, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(multi[i]) != len(single) {
			t.Fatalf("query %d: multi %v != single %v", i, multi[i], single)
		}
		for r := range single {
			if multi[i][r] != single[r] {
				t.Fatalf("query %d rank %d: multi %v != single %v", i, r, multi[i], single)
			}
		}
	}
}
