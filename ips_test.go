package ips

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ovp"
	"repro/internal/xrand"
)

// plantedOVP builds a small certified OVP instance.
func plantedOVP(rng *xrand.RNG) (*OVPInstance, OVPPair) {
	return ovp.Planted(rng, 10, 12, 16, 0.25, true)
}

func TestExactJoinFacade(t *testing.T) {
	rng := xrand.New(1)
	P, Q, _ := dataset.Planted(rng, 40, 8, 8, 0.9, []int{2})
	sp := Spec{Variant: Signed, S: 0.8, C: 0.5}
	res, err := ExactJoin(P, Q, sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGuarantee(P, Q, res, sp); err != nil {
		t.Fatal(err)
	}
}

func TestLSHJoinFacade(t *testing.T) {
	rng := xrand.New(2)
	P, Q, _ := dataset.Planted(rng, 150, 15, 16, 0.95, []int{0, 7})
	sp := Spec{Variant: Signed, S: 0.9, C: 0.5}
	res, err := LSHJoin(P, Q, sp, LSHJoinOptions{Seed: 3, L: 32, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := ExactJoin(P, Q, sp)
	if r := Recall(exact, res, sp.S); r < 0.99 {
		t.Fatalf("recall %v", r)
	}
}

func TestLSHJoinDefaults(t *testing.T) {
	rng := xrand.New(3)
	P, Q, _ := dataset.Planted(rng, 20, 4, 8, 0.95, []int{1})
	if _, err := LSHJoin(P, Q, Spec{Variant: Unsigned, S: 0.9, C: 0.5}, LSHJoinOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchJoinFacade(t *testing.T) {
	rng := xrand.New(4)
	P, Q, _ := dataset.Planted(rng, 128, 5, 16, 0.95, []int{2})
	kappa := 3.0
	c := SketchJoinGuaranteedC(len(P), kappa)
	if c <= 0 || c >= 1 {
		t.Fatalf("guaranteed c = %v", c)
	}
	sp := Spec{Variant: Unsigned, S: 0.9, C: c}
	res, err := SketchJoin(P, Q, sp, kappa, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGuarantee(P, Q, res, sp); err != nil {
		t.Fatal(err)
	}
}

func TestMIPSIndex(t *testing.T) {
	rng := xrand.New(6)
	P, Q, at := dataset.Planted(rng, 300, 10, 16, 0.95, []int{0, 4, 9})
	ix, err := NewMIPSIndex(P, MIPSOptions{Seed: 7, K: 6, L: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, qi := range []int{0, 4, 9} {
		got, val := ix.Query(Q[qi])
		if got != at[qi] {
			t.Fatalf("query %d: got %d (%.3f), want %d", qi, got, val, at[qi])
		}
	}
}

func TestMIPSIndexTopK(t *testing.T) {
	rng := xrand.New(8)
	P, Q, _ := dataset.Planted(rng, 200, 5, 16, 0.95, []int{1})
	ix, err := NewMIPSIndex(P, MIPSOptions{Seed: 9, K: 4, L: 16})
	if err != nil {
		t.Fatal(err)
	}
	top := ix.TopK(Q[1], 5)
	if len(top) == 0 {
		t.Fatal("empty TopK")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Value > top[i-1].Value {
			t.Fatal("TopK not sorted")
		}
	}
	if len(top) > 5 {
		t.Fatal("TopK too long")
	}
}

func TestMIPSIndexValidation(t *testing.T) {
	if _, err := NewMIPSIndex(nil, MIPSOptions{}); err == nil {
		t.Fatal("empty data must fail")
	}
}

func TestBruteMIPS(t *testing.T) {
	data := []Vector{{1, 0}, {0, -1}, {0.5, 0.5}}
	q := Vector{0, 1}
	i, v := BruteMIPS(data, q, false)
	if i != 2 || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("signed BruteMIPS = (%d, %v)", i, v)
	}
	i, v = BruteMIPS(data, q, true)
	if i != 1 || math.Abs(v-1) > 1e-12 {
		t.Fatalf("unsigned BruteMIPS = (%d, %v)", i, v)
	}
}

func TestSketchMIPSFacade(t *testing.T) {
	rng := xrand.New(10)
	P, Q, at := dataset.Planted(rng, 128, 3, 16, 0.95, []int{0})
	m, err := NewSketchMIPS(P, 3, 9, 11)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := m.Query(Q[0])
	if got != at[0] {
		t.Fatalf("SketchMIPS query = %d, want %d", got, at[0])
	}
}

func TestTheoryFacade(t *testing.T) {
	if _, err := NewSignedEmbedding(8); err != nil {
		t.Fatal(err)
	}
	if _, err := NewChebyshevEmbedding(8, 2); err != nil {
		t.Fatal(err)
	}
	e, err := NewChoppedEmbedding(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Params().S != 4 {
		t.Fatalf("chopped s = %v", e.Params().S)
	}
	st, err := StaircaseCase1(2, 0.1, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(1e-9); err != nil {
		t.Fatal(err)
	}
	if LSHGapBound(1024) <= 0 {
		t.Fatal("gap bound")
	}
	fig, err := RenderFigure1(15)
	if err != nil || !strings.Contains(fig, "3") {
		t.Fatalf("RenderFigure1: %v", err)
	}
	pts := Figure2(0.7, 20)
	if len(pts) != 20 {
		t.Fatal("Figure2 length")
	}
	if RhoDataDep(0.7, 0.5) > RhoSimple(0.7, 0.5) {
		t.Fatal("DATA-DEP must dominate SIMP")
	}
	_ = RhoMH(0.7, 0.5)
}

func TestTheoryFacadeOVP(t *testing.T) {
	rng := xrand.New(12)
	inst, pair := plantedOVP(rng)
	got, ok := SolveOVPNaive(inst)
	if !ok || got != pair {
		t.Fatalf("naive OVP = %+v ok=%v", got, ok)
	}
	e, err := NewChoppedEmbedding(inst.D, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = SolveOVPViaEmbedding(inst, e)
	if !ok || got != pair {
		t.Fatalf("embedded OVP = %+v ok=%v", got, ok)
	}
}

func TestIndexFacades(t *testing.T) {
	rng := xrand.New(20)
	P, Q, at := dataset.Planted(rng, 200, 4, 16, 0.95, []int{0})
	nr, err := NewNormRangeMIPS(P, NormRangeOptions{K: 6, L: 24, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := nr.Query(Q[0]); got != at[0] {
		t.Fatalf("NormRangeMIPS query = %d, want %d", got, at[0])
	}
	mp, err := NewMultiProbeIndex(16, 8, 4, 3, 22)
	if err != nil {
		t.Fatal(err)
	}
	mp.InsertAll(P)
	if got, _ := mp.Query(Q[0], func(p Vector) float64 { return Dot(p, Q[0]) }); got != at[0] {
		t.Fatalf("MultiProbe query = %d, want %d", got, at[0])
	}
}

func TestStaircaseCase2And3Facade(t *testing.T) {
	st2, err := StaircaseCase2(2, 0.5, 0.5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Verify(1e-9); err != nil {
		t.Fatal(err)
	}
	st3, err := StaircaseCase3(0.5, 0.5, 72, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := st3.Verify(1e-9); err != nil {
		t.Fatal(err)
	}
}
