package ips

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

func TestBaselineMIPSFacade(t *testing.T) {
	rng := xrand.New(1)
	lf := dataset.NewLatentFactor(rng, 300, 10, 8, 0.8)
	np, err := NewNormPrunedMIPS(lf.Items)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBallTreeMIPS(lf.Items, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range lf.Users {
		exact, exactV := BruteMIPS(lf.Items, q, false)
		if r := np.Query(q); r.Index != exact && r.Value != exactV {
			t.Fatalf("norm-pruned: %d (%v), want %d (%v)", r.Index, r.Value, exact, exactV)
		}
		if r := bt.Query(q); r.Value != exactV {
			t.Fatalf("ball tree value %v, want %v", r.Value, exactV)
		}
	}
}

func TestCorrelationFacade(t *testing.T) {
	const n, d, g = 64, 4096, 4
	rho := 2 * AggregationSignalFloor(n, d, g)
	in, err := NewCorrelationInstance(2, n, n, d, rho)
	if err != nil {
		t.Fatal(err)
	}
	naive := DetectCorrelationNaive(in)
	if naive.PIdx != in.PIdx || naive.QIdx != in.QIdx {
		t.Fatal("naive detection failed")
	}
	agg, err := DetectCorrelationAggregate(in, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.PIdx != in.PIdx || agg.QIdx != in.QIdx {
		t.Fatal("aggregate detection failed")
	}
	if agg.Work >= naive.Work {
		t.Fatalf("aggregation did not save work: %d vs %d", agg.Work, naive.Work)
	}
}
