// Command loadgen replays a synthetic MIPS workload against an ipsd
// server and reports ingest/search throughput, latency percentiles,
// and — unless -verify=false — checks the sharded top-k answers are
// identical to a local single-shard exact scan.
//
// With no -addr it spins up an in-process server, so
//
//	loadgen -n 100000 -q 1000 -shards 4 -k 10
//
// is a self-contained end-to-end acceptance run.
//
// -mixed switches to an ingest-heavy mixed workload: -ingest-workers
// goroutines PUT ingest chunks concurrently while a searcher goroutine
// fires batched queries at the moving collection — the shape that
// exercises WAL/ingest-lock contention on a durable server. Once the
// ingest quiesces, -mutate-ops batches of upserts and deletes over
// Zipf-skewed record ids hammer the collection (searches still
// running), exercising tombstoned scans, cache invalidation and
// background compaction; loadgen tracks every mutation it issued and
// the final verified search pass checks the server's answers against
// the tracker's live set, so a hit on a deleted id or a stale vector
// fails the run.
//
// -precision selects the collection's storage tier: f32 rounds the
// local ground truth to binary32 and forces re-ranking, so the verified
// pass still demands bit-identical f64 answers; int8 relaxes the check
// to a recall@k ≥ 0.99 floor while requiring every returned score to be
// the exact f64 inner product (the server always re-ranks int8).
//
// -skip-ingest assumes the server already holds the workload (e.g.
// after a restart recovered it from its data directory) and goes
// straight to the verified search pass: together with -seed this makes
// a kill/restart cycle checkable end to end.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/mips"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// routeTracker accumulates client-observed latencies per route label
// and client-side allocation counters per workload phase, reported as
// p50/p95/p99 at exit. The -mixed workload issues requests from
// several goroutines, so observations are mutex-guarded.
type routeTracker struct {
	mu     sync.Mutex
	order  []string
	byName map[string][]float64 // milliseconds
	mem    runtime.MemStats
}

func newRouteTracker() *routeTracker {
	return &routeTracker{byName: map[string][]float64{}}
}

// observe records one request's wall time under the route label.
func (tr *routeTracker) observe(route string, d time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.byName[route]; !ok {
		tr.order = append(tr.order, route)
	}
	tr.byName[route] = append(tr.byName[route], float64(d)/float64(time.Millisecond))
}

// phaseAllocs returns the process-wide (mallocs, bytes) delta since
// the previous call. Against a remote -addr this is the loadgen's own
// encode/decode cost (a proxy for wire-level garbage per phase); in
// the default in-process mode it includes the server's work too.
func (tr *routeTracker) phaseAllocs() (uint64, uint64) {
	prevM, prevB := tr.mem.Mallocs, tr.mem.TotalAlloc
	runtime.ReadMemStats(&tr.mem)
	return tr.mem.Mallocs - prevM, tr.mem.TotalAlloc - prevB
}

// report prints per-route request counts and latency percentiles.
func (tr *routeTracker) report() {
	fmt.Printf("per-route latency (client-observed):\n")
	for _, route := range tr.order {
		ms := tr.byName[route]
		fmt.Printf("  %-38s n=%-5d p50=%.3fms p95=%.3fms p99=%.3fms\n",
			route, len(ms), stats.Quantile(ms, 0.50), stats.Quantile(ms, 0.95), stats.Quantile(ms, 0.99))
	}
}

func main() {
	addr := flag.String("addr", "", "server address (empty = run an in-process server)")
	n := flag.Int("n", 100000, "data vectors to ingest")
	q := flag.Int("q", 1000, "queries to run")
	d := flag.Int("d", 16, "vector dimension")
	k := flag.Int("k", 10, "top-k per query")
	batch := flag.Int("batch", 1000, "queries per search request")
	chunk := flag.Int("chunk", 20000, "records per ingest request")
	shards := flag.Int("shards", 4, "shards for the collection")
	index := flag.String("index", "exact", "index kind: exact | normscan | alsh | sketch")
	precision := flag.String("precision", "f64", "collection storage precision: f64 | f32 | int8")
	rerank := flag.Bool("rerank", false, "re-rank candidates through the exact f64 store (implied for f32/int8 verification)")
	sigma := flag.Float64("sigma", 0.5, "latent-factor popularity skew")
	seed := flag.Uint64("seed", 1, "workload seed")
	verify := flag.Bool("verify", true, "check sharded results against a local exact scan")
	mixed := flag.Bool("mixed", false, "ingest-heavy mixed workload: concurrent ingest chunks + searches against the moving collection")
	ingestWorkers := flag.Int("ingest-workers", 4, "concurrent ingest requests in -mixed mode")
	mutateOps := flag.Int("mutate-ops", 300, "upsert/delete batches after the -mixed ingest (0 disables)")
	mutatePass := flag.Int("mutate-pass", 0, "after a plain ingest, apply this many deterministic upsert/delete batches; -skip-ingest recomputes the same pass locally, so a restarted server is verified against the post-mutation state")
	zipfA := flag.Float64("zipf", 1.1, "Zipf exponent for mutated record ids")
	skipIngest := flag.Bool("skip-ingest", false, "skip ingest; verify the server's existing data (e.g. after a restart)")
	retries := flag.Int("retries", 0, "client-side retries per request on 429/503, with capped exponential backoff + jitter honoring Retry-After (0 disables)")
	slo := flag.Bool("slo", false, "SLO mode: status-aware multi-tenant traffic with an overload phase (see slo.go)")
	sloSteady := flag.Duration("slo-steady", 5*time.Second, "steady-phase duration in -slo mode")
	sloOverload := flag.Duration("slo-overload", 5*time.Second, "overload-phase duration in -slo mode")
	sloClients := flag.Int("slo-clients", 4, "steady-phase concurrent clients in -slo mode")
	sloOverloadClients := flag.Int("slo-overload-clients", 64, "extra clients during the overload phase")
	sloTenants := flag.Int("slo-tenants", 4, "tenant collections in -slo mode (Zipf-skewed traffic)")
	sloTimeoutMS := flag.Int("slo-timeout-ms", 200, "timeout_ms attached to every -slo search")
	sloMaxInflight := flag.Int("slo-max-inflight", 4, "in-process server per-collection admission cap in -slo mode")
	sloMaxQueue := flag.Int("slo-max-queue", 8, "in-process server admission queue depth in -slo mode")
	sloReportPath := flag.String("slo-report", "", "write the JSON SLO report to this file")
	sloRequireShed := flag.Bool("slo-require-shed", false, "fail unless the overload phase saw 429s with Retry-After")
	flag.Parse()
	retryMax = *retries
	switch *precision {
	case server.PrecisionF64, server.PrecisionF32, server.PrecisionI8:
	default:
		log.Fatalf("loadgen: unknown -precision %q (want f64, f32 or int8)", *precision)
	}
	// The spec omits the default precision so requests (and durable
	// manifests) stay byte-identical to pre-precision runs; re-ranking
	// is forced on for f32 so the verification below can demand exact
	// f64 answers (int8 always re-ranks server-side).
	specPrecision := *precision
	if specPrecision == server.PrecisionF64 {
		specPrecision = ""
	}
	doRerank := *rerank || *precision != server.PrecisionF64
	if *slo {
		os.Exit(runSLO(sloFlags{
			addr: *addr, n: *n, d: *d, k: *k,
			index: *index, shards: *shards, seed: *seed,
			precision: specPrecision, rerank: doRerank,
			tenants: *sloTenants, zipfA: *zipfA, timeoutMS: *sloTimeoutMS,
			steady: *sloSteady, overload: *sloOverload,
			clients: *sloClients, overloadClients: *sloOverloadClients,
			maxInflight: *sloMaxInflight, maxQueue: *sloMaxQueue,
			report: *sloReportPath, requireShed: *sloRequireShed,
		}))
	}
	if *mixed && *skipIngest {
		log.Fatal("loadgen: -mixed and -skip-ingest are mutually exclusive")
	}
	if *mixed && *mutatePass > 0 {
		log.Fatal("loadgen: -mutate-pass applies to the plain workload; -mixed has its own mutation storm (-mutate-ops)")
	}

	base := *addr
	if base == "" {
		srv := server.New(server.Config{DefaultShards: *shards})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("loadgen: listen: %v", err)
		}
		hs := &http.Server{Handler: server.NewHandler(srv)}
		go func() {
			if err := hs.Serve(ln); err != http.ErrServerClosed {
				log.Printf("loadgen: serve: %v", err)
			}
		}()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process ipsd at %s\n", base)
	} else if len(base) >= 4 && base[:4] != "http" {
		base = "http://" + base
	}

	rng := xrand.New(*seed)
	fmt.Printf("generating latent-factor workload: n=%d q=%d d=%d sigma=%g\n", *n, *q, *d, *sigma)
	lf := dataset.NewLatentFactor(rng, *n, *q, *d, *sigma)
	lf.ScaleItemsToUnitBall()
	// An f32 collection rounds every ingested vector to binary32, so the
	// local ground truth must be computed over the same rounded rows.
	round := *precision == server.PrecisionF32
	if round {
		for _, v := range lf.Items {
			roundVec32(v)
		}
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	collection := "bench"
	tr := newRouteTracker()
	timed := func(route, method, url string, body, out any) error {
		t0 := time.Now()
		err := call(client, method, url, body, out)
		tr.observe(route, time.Since(t0))
		return err
	}
	tr.phaseAllocs() // baseline the client-side allocation counters

	ingestChunk := func(lo, hi int) error {
		recs := make([]server.RecordJSON, hi-lo)
		for i := lo; i < hi; i++ {
			id := i
			recs[i-lo] = server.RecordJSON{ID: &id, Vec: lf.Items[i]}
		}
		req := server.IngestRequest{
			Index:   &server.IndexSpec{Kind: *index, Precision: specPrecision},
			Shards:  *shards,
			Records: recs,
		}
		var resp server.IngestResponse
		return timed("PUT /collections/{name}", http.MethodPut, base+"/collections/"+collection, req, &resp)
	}

	// mutatedLive, when non-nil, is the tracker's view of the collection
	// after a mutation phase: mutatedLive[id] is the record's current
	// vector, nil if deleted. The verification pass then runs against
	// this instead of the pristine workload.
	var mutatedLive [][]float64
	applyOverlay := func(overlay map[int][]float64) {
		mutatedLive = make([][]float64, *n)
		for id := range mutatedLive {
			mutatedLive[id] = lf.Items[id]
		}
		for id, v := range overlay {
			mutatedLive[id] = v // nil marks a delete
		}
	}

	// The deterministic mutation pass is derived entirely from the
	// flags, so a -skip-ingest run against a restarted server recomputes
	// the exact state the mutating run left on disk.
	var passPlan []mutOp
	expectedRecords := *n
	if *mutatePass > 0 {
		var overlay map[int][]float64
		passPlan, overlay = mutationPlan(*seed+0xfeed, *n, *d, *mutatePass, *zipfA, round)
		for _, v := range overlay {
			if v == nil {
				expectedRecords--
			}
		}
		applyOverlay(overlay)
	}

	switch {
	case *skipIngest:
		// The server is expected to already hold the workload (a
		// restarted durable ipsd); check the record count matches
		// before trusting the search comparison below.
		var st server.Stats
		if err := timed("GET /stats", http.MethodGet, base+"/stats", nil, &st); err != nil {
			log.Fatalf("loadgen: stats: %v", err)
		}
		cs, ok := st.Collections[collection]
		if !ok || cs.Records != expectedRecords {
			log.Fatalf("loadgen: -skip-ingest: server has %d records in %q, want %d", cs.Records, collection, expectedRecords)
		}
		fmt.Printf("skipping ingest: server already holds %d records in %q\n", cs.Records, collection)

	case *mixed:
		// Ingest-heavy mixed workload: ingest chunks race each other
		// (server-side they serialize on the collection's ingest lock
		// and WAL) while a searcher hammers the moving collection.
		type span struct{ lo, hi int }
		var chunks []span
		for lo := 0; lo < *n; lo += *chunk {
			hi := lo + *chunk
			if hi > *n {
				hi = *n
			}
			chunks = append(chunks, span{lo, hi})
		}
		// Create the collection up front (empty ingest) so concurrent
		// first-chunk races cannot fight over the index spec.
		if err := ingestChunk(0, 0); err != nil {
			log.Fatalf("loadgen: mixed: create: %v", err)
		}
		var next atomic.Int64
		var liveSearches atomic.Int64
		ingestDone := make(chan struct{})
		var searchWG sync.WaitGroup
		searchWG.Add(1)
		go func() {
			defer searchWG.Done()
			qb := min(*batch, *q)
			queries := make([][]float64, qb)
			for i := range queries {
				queries[i] = lf.Users[i]
			}
			for {
				select {
				case <-ingestDone:
					return
				default:
				}
				var resp server.SearchResponse
				err := timed("POST /collections/{name}/search (mixed)", http.MethodPost,
					base+"/collections/"+collection+"/search",
					server.SearchRequest{Queries: queries, K: *k, Rerank: doRerank}, &resp)
				if err != nil {
					log.Fatalf("loadgen: mixed search: %v", err)
				}
				liveSearches.Add(int64(qb))
			}
		}()
		ingestStart := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < *ingestWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= len(chunks) {
						return
					}
					c := chunks[ci]
					if err := ingestChunk(c.lo, c.hi); err != nil {
						log.Fatalf("loadgen: mixed ingest [%d,%d): %v", c.lo, c.hi, err)
					}
				}
			}()
		}
		wg.Wait()
		ingestDur := time.Since(ingestStart)

		// Mutation storm: upsert/delete batches over Zipf-skewed ids
		// while the searcher keeps running. Workers own disjoint id
		// stripes (id ≡ w mod workers), so each id's mutation order is
		// the issuing worker's program order and the tracker's final
		// state is exact despite the concurrency.
		var upserted, deleted int64
		if *mutateOps > 0 {
			W := *ingestWorkers
			if W > *mutateOps {
				W = *mutateOps
			}
			stripes := make([]map[int][]float64, W)
			mutStart := time.Now()
			var mwg sync.WaitGroup
			for w := 0; w < W; w++ {
				mwg.Add(1)
				go func(w int) {
					defer mwg.Done()
					stripe := map[int][]float64{}
					stripes[w] = stripe
					mrng := xrand.New(*seed + 0x5eed + uint64(w))
					stripeN := (*n - w + W - 1) / W // ids w, w+W, w+2W, … below n
					if stripeN <= 0 {
						return
					}
					zipf := xrand.NewZipf(mrng, stripeN, *zipfA)
					ops := *mutateOps / W
					if w < *mutateOps%W {
						ops++
					}
					for op := 0; op < ops; op++ {
						// Draw a batch of distinct skewed ids; the draw cap
						// keeps heavy skew from stalling on duplicates.
						want := 1 + mrng.Intn(16)
						batch := map[int]struct{}{}
						for tries := 0; len(batch) < want && tries < 200; tries++ {
							batch[zipf.Draw()*W+w] = struct{}{}
						}
						if mrng.Float64() < 0.55 {
							recs := make([]server.RecordJSON, 0, len(batch))
							for id := range batch {
								id := id
								v := mrng.NormalVec(*d)
								if round {
									roundVec32(v)
								}
								recs = append(recs, server.RecordJSON{ID: &id, Vec: v})
								stripe[id] = v
							}
							var resp server.UpsertResponse
							if err := timed("POST /collections/{name}/vectors", http.MethodPost,
								base+"/collections/"+collection+"/vectors",
								server.IngestRequest{Records: recs}, &resp); err != nil {
								log.Fatalf("loadgen: mixed upsert: %v", err)
							}
							atomic.AddInt64(&upserted, int64(len(recs)))
						} else {
							ids := make([]int, 0, len(batch))
							for id := range batch {
								ids = append(ids, id)
								stripe[id] = nil
							}
							var resp server.DeleteVectorsResponse
							if err := timed("POST /collections/{name}/vectors/delete", http.MethodPost,
								base+"/collections/"+collection+"/vectors/delete",
								server.DeleteVectorsRequest{IDs: ids}, &resp); err != nil {
								log.Fatalf("loadgen: mixed delete: %v", err)
							}
							atomic.AddInt64(&deleted, int64(len(ids)))
						}
					}
				}(w)
			}
			mwg.Wait()
			mutDur := time.Since(mutStart)
			mutatedLive = make([][]float64, *n)
			for id := range mutatedLive {
				mutatedLive[id] = lf.Items[id]
			}
			for _, stripe := range stripes {
				for id, v := range stripe {
					mutatedLive[id] = v // nil marks a delete
				}
			}
			fmt.Printf("mixed: %d mutation batches (%d upserts, %d deletes, zipf a=%g) in %v\n",
				*mutateOps, upserted, deleted, *zipfA, mutDur.Round(time.Millisecond))
		}

		close(ingestDone)
		searchWG.Wait()
		fmt.Printf("mixed: ingested %d vectors in %v (%.0f vec/s, %d ingest workers) with %d live queries alongside (index=%s)\n",
			*n, ingestDur.Round(time.Millisecond), float64(*n)/ingestDur.Seconds(),
			*ingestWorkers, liveSearches.Load(), *index)
		if m, b := tr.phaseAllocs(); true {
			fmt.Printf("  process allocs during mixed phase: %d mallocs, %.1f MB\n", m, float64(b)/(1<<20))
		}

	default:
		// Ingest in chunks.
		ingestStart := time.Now()
		for lo := 0; lo < *n; lo += *chunk {
			hi := lo + *chunk
			if hi > *n {
				hi = *n
			}
			if err := ingestChunk(lo, hi); err != nil {
				log.Fatalf("loadgen: ingest [%d,%d): %v", lo, hi, err)
			}
		}
		ingestDur := time.Since(ingestStart)
		fmt.Printf("ingested %d vectors in %v (%.0f vec/s) across %d shards (index=%s)\n",
			*n, ingestDur.Round(time.Millisecond), float64(*n)/ingestDur.Seconds(), *shards, *index)
		if m, b := tr.phaseAllocs(); true {
			fmt.Printf("  process allocs during ingest: %d mallocs, %.1f MB\n", m, float64(b)/(1<<20))
		}

		// Deterministic mutation pass: replay the precomputed plan so
		// the durable state matches what -skip-ingest will recompute.
		if len(passPlan) > 0 {
			mutStart := time.Now()
			var up, del int
			for _, op := range passPlan {
				if op.recs != nil {
					var resp server.UpsertResponse
					if err := timed("POST /collections/{name}/vectors", http.MethodPost,
						base+"/collections/"+collection+"/vectors",
						server.IngestRequest{Records: op.recs}, &resp); err != nil {
						log.Fatalf("loadgen: mutate-pass upsert: %v", err)
					}
					up += len(op.recs)
				} else {
					var resp server.DeleteVectorsResponse
					if err := timed("POST /collections/{name}/vectors/delete", http.MethodPost,
						base+"/collections/"+collection+"/vectors/delete",
						server.DeleteVectorsRequest{IDs: op.ids}, &resp); err != nil {
						log.Fatalf("loadgen: mutate-pass delete: %v", err)
					}
					del += len(op.ids)
				}
			}
			fmt.Printf("mutation pass: %d batches (%d upserts, %d delete requests) in %v\n",
				len(passPlan), up, del, time.Since(mutStart).Round(time.Millisecond))
		}
	}

	// Batched searches.
	type batchTiming struct {
		queries int
		dur     time.Duration
	}
	var timings []batchTiming
	results := make([][]server.Hit, *q)
	searchStart := time.Now()
	for lo := 0; lo < *q; lo += *batch {
		hi := lo + *batch
		if hi > *q {
			hi = *q
		}
		queries := make([][]float64, hi-lo)
		for i := lo; i < hi; i++ {
			queries[i-lo] = lf.Users[i]
		}
		var resp server.SearchResponse
		t0 := time.Now()
		err := timed("POST /collections/{name}/search", http.MethodPost,
			base+"/collections/"+collection+"/search",
			server.SearchRequest{Queries: queries, K: *k, Rerank: doRerank}, &resp)
		if err != nil {
			log.Fatalf("loadgen: search [%d,%d): %v", lo, hi, err)
		}
		timings = append(timings, batchTiming{queries: hi - lo, dur: time.Since(t0)})
		copy(results[lo:hi], resp.Results)
	}
	searchDur := time.Since(searchStart)
	fmt.Printf("ran %d top-%d queries in %v (%.0f q/s, %d per request)\n",
		*q, *k, searchDur.Round(time.Millisecond), float64(*q)/searchDur.Seconds(), *batch)
	for _, bt := range timings {
		fmt.Printf("  batch of %d: %v (%.2f ms/query)\n",
			bt.queries, bt.dur.Round(time.Microsecond),
			float64(bt.dur)/float64(time.Millisecond)/float64(bt.queries))
	}

	if m, b := tr.phaseAllocs(); true {
		fmt.Printf("  process allocs during search: %d mallocs, %.1f MB\n", m, float64(b)/(1<<20))
	}

	// Server-side stats.
	var st server.Stats
	if err := timed("GET /stats", http.MethodGet, base+"/stats", nil, &st); err != nil {
		log.Fatalf("loadgen: stats: %v", err)
	}
	cs := st.Collections[collection]
	fmt.Printf("server stats: records=%d tombstoned=%d compactions=%d version=%d queries=%d latency p50=%.3fms p90=%.3fms p99=%.3fms\n",
		cs.Records, cs.Tombstoned, cs.Compactions, cs.Version, cs.Queries,
		cs.Latency.P50, cs.Latency.P90, cs.Latency.P99)
	for _, sh := range cs.Shards {
		fmt.Printf("  shard %d: %d records (%d live, %d tombstoned), %d queries\n",
			sh.ID, sh.Records, sh.Live, sh.Tombstoned, sh.Queries)
	}
	fmt.Printf("cache: size=%d hits=%d misses=%d invalidations=%d\n",
		st.Cache.Size, st.Cache.Hits, st.Cache.Misses, st.Cache.Invalidations)
	tr.report()
	if retryMax > 0 {
		fmt.Printf("client retries: %d issued (429/503, backoff capped at %v, Retry-After honored)\n",
			retriesIssued.Load(), retryMaxBackoff)
	}

	// The tracker's live set and the server's must agree exactly: the
	// count here, the content via the verified search pass below.
	verifyIDs, verifyItems := make([]int, 0, *n), make([]vec.Vector, 0, *n)
	if mutatedLive != nil {
		for id, v := range mutatedLive {
			if v != nil {
				verifyIDs = append(verifyIDs, id)
				verifyItems = append(verifyItems, v)
			}
		}
		if cs.Records != len(verifyIDs) {
			log.Fatalf("loadgen: FAILED: server holds %d live records, tracker says %d", cs.Records, len(verifyIDs))
		}
		fmt.Printf("live-set count matches tracker: %d records after mutations\n", len(verifyIDs))
	} else {
		for id, v := range lf.Items {
			verifyIDs = append(verifyIDs, id)
			verifyItems = append(verifyItems, v)
		}
	}

	if !*verify {
		return
	}

	// Verify: for f64 — and for f32, whose re-ranked answers must equal
	// the f64 scan over the rounded rows — the sharded answers must be
	// identical to the unsharded exact scan (single-shard ground truth
	// computed locally over the live set; after a mutation storm, the
	// tracker's view of it). int8 answers are re-ranked candidates, so
	// the check is relaxed to a recall floor — but every returned score
	// must still be the exact f64 inner product of the live record.
	fmt.Printf("verifying against local exact scan (precision=%s)...\n", *precision)
	liveVec := func(id int) []float64 {
		if mutatedLive != nil {
			if id < 0 || id >= len(mutatedLive) {
				return nil
			}
			return mutatedLive[id]
		}
		if id < 0 || id >= len(lf.Items) {
			return nil
		}
		return lf.Items[id]
	}
	var mismatches atomic.Int64
	var recallHit, recallTotal atomic.Int64
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := int(next.Add(1)) - 1
				if qi >= *q {
					return
				}
				want := exactTopK(verifyIDs, verifyItems, lf.Users[qi], *k)
				got := results[qi]
				if *precision == server.PrecisionI8 {
					wantIDs := make(map[int]struct{}, len(want))
					for _, h := range want {
						wantIDs[h.ID] = struct{}{}
					}
					hit := 0
					ok := true
					for _, h := range got {
						if _, in := wantIDs[h.ID]; in {
							hit++
						}
						v := liveVec(h.ID)
						if v == nil || h.Score != vec.Dot(v, lf.Users[qi]) {
							ok = false // deleted id served, or non-exact score
							break
						}
					}
					recallHit.Add(int64(hit))
					recallTotal.Add(int64(len(want)))
					if !ok {
						if mismatches.Add(1) <= 3 {
							log.Printf("loadgen: query %d: int8 answer has a stale id or inexact score:\n  got  %v", qi, got)
						}
					}
					continue
				}
				ok := len(got) == len(want)
				if ok {
					for i := range want {
						if got[i] != want[i] {
							ok = false
							break
						}
					}
				}
				// Top-1 must also agree with the mips package baseline.
				if ok && len(got) > 0 && len(verifyItems) > 0 {
					ls := mips.LinearScan(verifyItems, lf.Users[qi])
					if got[0].ID != verifyIDs[ls.Index] || got[0].Score != ls.Value {
						ok = false
					}
				}
				if !ok {
					if mismatches.Add(1) <= 3 {
						log.Printf("loadgen: query %d mismatch:\n  got  %v\n  want %v", qi, got, want)
					}
				}
			}
		}()
	}
	wg.Wait()
	if m := mismatches.Load(); m > 0 {
		log.Printf("loadgen: FAILED: %d/%d queries differ from the exact scan", m, *q)
		os.Exit(1)
	}
	if *precision == server.PrecisionI8 {
		recall := float64(recallHit.Load()) / float64(recallTotal.Load())
		if recall < 0.99 {
			log.Printf("loadgen: FAILED: int8 recall@%d %.4f < 0.99", *k, recall)
			os.Exit(1)
		}
		fmt.Printf("verified: int8 recall@%d %.4f ≥ 0.99 over %d queries; every returned score is the exact f64 inner product\n",
			*k, recall, *q)
		return
	}
	fmt.Printf("verified: all %d sharded top-%d answers identical to the single-shard exact scan\n", *q, *k)
}

// roundVec32 rounds v to binary32 in place, mirroring what an f32
// collection does at ingest.
func roundVec32(v []float64) {
	for i, x := range v {
		v[i] = float64(float32(x))
	}
}

// mutOp is one precomputed mutation batch: recs non-nil for an
// upsert, ids for a delete.
type mutOp struct {
	recs []server.RecordJSON
	ids  []int
}

// mutationPlan deterministically derives a sequence of upsert/delete
// batches over Zipf-skewed ids, plus the overlay they leave behind
// (id → current vector, nil = deleted). Both the mutating run and the
// later -skip-ingest verification recompute the identical plan from
// the flags alone, which is what makes a kill/restart cycle checkable
// end to end. Batch ids are sorted before the per-id vectors are
// drawn, so map iteration order cannot perturb the RNG stream.
func mutationPlan(seed uint64, n, d, ops int, a float64, round bool) ([]mutOp, map[int][]float64) {
	rng := xrand.New(seed)
	zipf := xrand.NewZipf(rng, n, a)
	overlay := map[int][]float64{}
	plan := make([]mutOp, 0, ops)
	for op := 0; op < ops; op++ {
		want := 1 + rng.Intn(16)
		batch := map[int]struct{}{}
		for tries := 0; len(batch) < want && tries < 200; tries++ {
			batch[zipf.Draw()] = struct{}{}
		}
		ids := make([]int, 0, len(batch))
		for id := range batch {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		if rng.Float64() < 0.55 {
			recs := make([]server.RecordJSON, len(ids))
			for i, id := range ids {
				id := id
				v := rng.NormalVec(d)
				if round {
					roundVec32(v)
				}
				recs[i] = server.RecordJSON{ID: &id, Vec: v}
				overlay[id] = v
			}
			plan = append(plan, mutOp{recs: recs})
		} else {
			for _, id := range ids {
				overlay[id] = nil
			}
			plan = append(plan, mutOp{ids: ids})
		}
	}
	return plan, overlay
}

// exactTopK is the unsharded ground truth with the server's canonical
// ordering (score descending, ID ascending on ties); ids[i] is the
// record id of items[i], in ascending order.
func exactTopK(ids []int, items []vec.Vector, q vec.Vector, k int) []server.Hit {
	hits := make([]server.Hit, 0, k+1)
	for i, p := range items {
		v := vec.Dot(p, q)
		if len(hits) == k && v < hits[k-1].Score {
			continue
		}
		hits = append(hits, server.Hit{ID: ids[i], Score: v})
		sort.Slice(hits, func(a, b int) bool {
			if hits[a].Score != hits[b].Score {
				return hits[a].Score > hits[b].Score
			}
			return hits[a].ID < hits[b].ID
		})
		if len(hits) > k {
			hits = hits[:k]
		}
	}
	return hits
}

// call performs one JSON round-trip, decoding an {"error": ...} body
// into a Go error. Every request carries a client-minted W3C
// traceparent (one trace id per logical request, a fresh span id per
// retry attempt), so a traced server stitches the loadgen's requests
// into its /debug plane. With -retries > 0 the transient statuses
// (429/503) are absorbed with capped exponential backoff + jitter,
// honoring the server's Retry-After hint, before the final status is
// reported.
func call(client *http.Client, method, url string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	traceID, _ := trace.NewIDs()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		_, spanID := trace.NewIDs()
		req.Header.Set("traceparent", trace.Format(traceID, spanID))
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		if retryableStatus(resp.StatusCode) && attempt < retryMax {
			ra := resp.Header.Get("Retry-After")
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			retriesIssued.Add(1)
			time.Sleep(retryDelay(attempt+1, ra))
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			if e.Error == "" {
				e.Error = resp.Status
			}
			return fmt.Errorf("%s %s: %s", method, url, e.Error)
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}
}
