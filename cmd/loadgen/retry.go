package main

// Client-side retry for the transient status classes. ipsd answers
// 429 when admission control sheds a query and 503 when a collection
// is degraded, quarantined or closing — both carry a Retry-After hint
// and both are expected to clear on their own (a freed slot, a
// background repair). With -retries > 0 the loadgen client absorbs
// them with capped exponential backoff plus full jitter instead of
// failing the run, which is how a production client should consume a
// server that degrades deliberately.

import (
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

const (
	retryBaseBackoff = 25 * time.Millisecond
	retryMaxBackoff  = 2 * time.Second
)

// retryMax is the -retries flag: additional attempts allowed per
// request after a retryable status. Zero disables client retry.
var retryMax int

// retriesIssued counts retry attempts actually sent, across both the
// plain workload (reported at exit) and -slo mode (in the report).
var retriesIssued atomic.Int64

// retryableStatus reports whether a response is worth retrying: 429
// (shed) and 503 (unavailable) are transient by the server's contract;
// everything else is either success or a request the client got wrong.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryDelay is the sleep before retry n (1-based): capped exponential
// backoff with full jitter — uniform over (0, cap] so synchronized
// clients spread out instead of retrying in lockstep — raised to the
// server's Retry-After hint when one was sent and larger.
func retryDelay(n int, retryAfter string) time.Duration {
	backoff := retryBaseBackoff
	for i := 1; i < n && backoff < retryMaxBackoff; i++ {
		backoff *= 2
	}
	if backoff > retryMaxBackoff {
		backoff = retryMaxBackoff
	}
	d := time.Duration(rand.Int63n(int64(backoff))) + time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	return d
}
