package main

// The -slo mode: a status-aware, multi-tenant traffic generator that
// drives an ipsd server through a steady phase and an overload phase
// and grades the outcome against serving SLOs instead of throughput.
// Unlike the main workload (which treats any non-200 as fatal), this
// client classifies responses — 2xx served, 429 shed, 504 deadline
// miss, other 4xx client error, 5xx server fault — because shedding
// and deadline misses are the behaviors under test: an overloaded
// server should degrade by answering 429/504 quickly, never by
// collapsing into 5xx or unbounded latency.
//
// Tenants are picked Zipf-skewed, so one hot collection absorbs most
// of the load while cold tenants measure cross-tenant interference.
// Ops are mixed (single search, batched search, upsert, delete) with
// every search carrying a timeout_ms. The run writes a JSON SLO
// report (per-route p50/p95/p99, shed rate, deadline-miss rate,
// status counts per phase) and exits non-zero on any server 5xx or —
// with -slo-require-shed — when overload produced no shedding at all.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// sloFlags carries the -slo* knobs from main.
type sloFlags struct {
	addr            string
	n, d, k         int
	index           string
	precision       string // "" = f64
	rerank          bool
	shards          int
	seed            uint64
	tenants         int
	zipfA           float64
	timeoutMS       int
	steady          time.Duration
	overload        time.Duration
	clients         int
	overloadClients int
	maxInflight     int
	maxQueue        int
	report          string
	requireShed     bool
}

// sloCounts are the per-phase response-class tallies.
type sloCounts struct {
	Served    int64 `json:"served"`     // 2xx
	Shed      int64 `json:"shed"`       // 429
	Deadline  int64 `json:"deadline"`   // 504
	ClientErr int64 `json:"client_err"` // other 4xx
	ServerErr int64 `json:"server_err"` // 5xx
	Transport int64 `json:"transport"`  // connection-level failures
}

func (c *sloCounts) total() int64 {
	return c.Served + c.Shed + c.Deadline + c.ClientErr + c.ServerErr + c.Transport
}

// sloRouteStats is one route's latency summary in the report.
type sloRouteStats struct {
	Route string  `json:"route"`
	N     int     `json:"n"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// SlowestTraceIDs names the (up to) 5 slowest requests on this
	// route, slowest first, by the trace id the client minted into the
	// traceparent header — resolvable at the server's /debug/trace/{id}
	// while they remain in its ring.
	SlowestTraceIDs []string `json:"slowest_trace_ids,omitempty"`
}

// sloReport is the JSON artifact the CI smoke step uploads.
type sloReport struct {
	Tenants          int             `json:"tenants"`
	TimeoutMS        int             `json:"timeout_ms"`
	MaxInflight      int             `json:"max_inflight"`
	MaxQueue         int             `json:"max_queue"`
	Steady           sloCounts       `json:"steady"`
	Overload         sloCounts       `json:"overload"`
	ShedRate         float64         `json:"shed_rate"`          // overload phase
	DeadlineMissRate float64         `json:"deadline_miss_rate"` // both phases
	Routes           []sloRouteStats `json:"routes"`
	RetryAfterSeen   bool            `json:"retry_after_seen"`
	// RetryMax echoes -retries; Retries counts retry attempts the
	// client actually issued on 429/503 across both phases.
	RetryMax int      `json:"retry_max"`
	Retries  int64    `json:"retries"`
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// sloObs is one classified request: its latency and the trace id the
// client stamped into the traceparent header.
type sloObs struct {
	ms      float64
	traceID string
}

// sloTracker accumulates classified responses and latencies from many
// client goroutines.
type sloTracker struct {
	mu      sync.Mutex
	byRoute map[string][]sloObs
	order   []string

	phase      atomic.Int32 // 0 steady, 1 overload
	counts     [2]sloCounts
	retryAfter atomic.Bool
}

func newSLOTracker() *sloTracker {
	return &sloTracker{byRoute: map[string][]sloObs{}}
}

func (t *sloTracker) observe(route string, status int, gotRetryAfter bool, d time.Duration, transportErr bool, traceID string) {
	p := t.phase.Load()
	c := &t.counts[p]
	switch {
	case transportErr:
		atomic.AddInt64(&c.Transport, 1)
	case status/100 == 2:
		atomic.AddInt64(&c.Served, 1)
	case status == http.StatusTooManyRequests:
		atomic.AddInt64(&c.Shed, 1)
		if gotRetryAfter {
			t.retryAfter.Store(true)
		}
	case status == http.StatusGatewayTimeout:
		atomic.AddInt64(&c.Deadline, 1)
	case status/100 == 4:
		atomic.AddInt64(&c.ClientErr, 1)
	default:
		atomic.AddInt64(&c.ServerErr, 1)
	}
	t.mu.Lock()
	if _, ok := t.byRoute[route]; !ok {
		t.order = append(t.order, route)
	}
	t.byRoute[route] = append(t.byRoute[route], sloObs{ms: float64(d) / float64(time.Millisecond), traceID: traceID})
	t.mu.Unlock()
}

// sloCall runs one JSON request and returns the status code without
// treating non-2xx as an error; the body is drained so connections are
// reused. Every request carries a client-minted traceparent (one trace
// id per logical request, a fresh span id per retry attempt); the trace
// id is returned so the report can name the slowest requests. With
// -retries > 0 the transient statuses (429/503) are retried with capped
// exponential backoff + jitter, honoring the server's Retry-After hint;
// only the final attempt's status is returned (and classified by the
// tracker), so a retried-away shed counts as served — which is exactly
// the client experience the report should grade.
func sloCall(client *http.Client, method, url string, body any) (status int, retryAfter bool, traceID string, err error) {
	var payload []byte
	if body != nil {
		if payload, err = json.Marshal(body); err != nil {
			return 0, false, "", err
		}
	}
	traceID, _ = trace.NewIDs()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(payload))
		if err != nil {
			return 0, false, traceID, err
		}
		req.Header.Set("Content-Type", "application/json")
		_, spanID := trace.NewIDs()
		req.Header.Set("traceparent", trace.Format(traceID, spanID))
		resp, err := client.Do(req)
		if err != nil {
			return 0, false, traceID, err
		}
		ra := resp.Header.Get("Retry-After")
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if retryableStatus(resp.StatusCode) && attempt < retryMax {
			retriesIssued.Add(1)
			time.Sleep(retryDelay(attempt+1, ra))
			continue
		}
		return resp.StatusCode, ra != "", traceID, nil
	}
}

// runSLO is the -slo entry point. It returns the process exit code.
func runSLO(f sloFlags) int {
	base := f.addr
	if base == "" {
		srv := server.New(server.Config{
			DefaultShards: f.shards,
			MaxInflight:   f.maxInflight,
			MaxQueue:      f.maxQueue,
			Seed:          f.seed,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("loadgen: listen: %v", err)
		}
		hs := &http.Server{Handler: server.NewHandler(srv)}
		go func() {
			if err := hs.Serve(ln); err != http.ErrServerClosed {
				log.Printf("loadgen: serve: %v", err)
			}
		}()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("slo: in-process ipsd at %s (max-inflight=%d max-queue=%d)\n",
			base, f.maxInflight, f.maxQueue)
	} else if len(base) >= 4 && base[:4] != "http" {
		base = "http://" + base
	}

	// Seed every tenant with its own slice of a latent-factor workload.
	rng := xrand.New(f.seed)
	nPer := f.n / f.tenants
	if nPer < 512 {
		nPer = 512
	}
	lf := dataset.NewLatentFactor(rng, nPer*f.tenants, 256, f.d, 0.5)
	lf.ScaleItemsToUnitBall()
	client := &http.Client{Timeout: 30 * time.Second}
	tenant := func(i int) string { return fmt.Sprintf("slo-%d", i) }
	fmt.Printf("slo: seeding %d tenants with %d vectors each (index=%s)\n", f.tenants, nPer, f.index)
	const seedChunk = 8192 // stay under the server's body cap
	for t := 0; t < f.tenants; t++ {
		for lo := 0; lo < nPer; lo += seedChunk {
			hi := min(lo+seedChunk, nPer)
			recs := make([]server.RecordJSON, hi-lo)
			for i := lo; i < hi; i++ {
				id := i
				recs[i-lo] = server.RecordJSON{ID: &id, Vec: lf.Items[t*nPer+i]}
			}
			req := server.IngestRequest{Index: &server.IndexSpec{Kind: f.index, Precision: f.precision}, Shards: f.shards, Records: recs}
			status, _, _, err := sloCall(client, http.MethodPut, base+"/collections/"+tenant(t), req)
			if err != nil || status != http.StatusOK {
				log.Fatalf("loadgen: slo seed tenant %d: status=%d err=%v", t, status, err)
			}
		}
	}

	tr := newSLOTracker()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var clientGate sync.RWMutex // overload clients wait on this until phase 2
	clientGate.Lock()

	worker := func(w int, overloadOnly bool) {
		defer wg.Done()
		wrng := xrand.New(f.seed + 0xc11e27 + uint64(w))
		zipf := xrand.NewZipf(wrng, f.tenants, f.zipfA)
		if overloadOnly {
			clientGate.RLock() // released at Unlock; holds until gate opens
			clientGate.RUnlock()
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			t := zipf.Draw()
			col := base + "/collections/" + tenant(t)
			var (
				route  string
				status int
				ra     bool
				tid    string
				err    error
			)
			t0 := time.Now()
			switch r := wrng.Float64(); {
			case r < 0.55: // single search
				route = "search"
				q := lf.Users[wrng.Intn(len(lf.Users))]
				status, ra, tid, err = sloCall(client, http.MethodPost, col+"/search",
					server.SearchRequest{Q: q, K: f.k, TimeoutMS: f.timeoutMS, Rerank: f.rerank})
			case r < 0.85: // batched search
				route = "search_batch"
				qs := make([][]float64, 16)
				for i := range qs {
					qs[i] = lf.Users[wrng.Intn(len(lf.Users))]
				}
				status, ra, tid, err = sloCall(client, http.MethodPost, col+"/search",
					server.SearchRequest{Queries: qs, K: f.k, TimeoutMS: f.timeoutMS, Rerank: f.rerank})
			case r < 0.95: // upsert a handful of hot ids
				route = "upsert"
				nrec := 1 + wrng.Intn(4)
				recs := make([]server.RecordJSON, nrec)
				for i := range recs {
					id := wrng.Intn(nPer)
					recs[i] = server.RecordJSON{ID: &id, Vec: wrng.NormalVec(f.d)}
				}
				status, ra, tid, err = sloCall(client, http.MethodPost, col+"/vectors",
					server.IngestRequest{Records: recs})
			default: // delete-then-reinsertable ids (unknown ids are no-ops)
				route = "delete"
				ids := []int{wrng.Intn(nPer)}
				status, ra, tid, err = sloCall(client, http.MethodPost, col+"/vectors/delete",
					server.DeleteVectorsRequest{IDs: ids})
			}
			tr.observe(route, status, ra, time.Since(t0), err != nil, tid)
		}
	}

	fmt.Printf("slo: steady phase: %d clients for %v (timeout_ms=%d, zipf a=%g over %d tenants)\n",
		f.clients, f.steady, f.timeoutMS, f.zipfA, f.tenants)
	for w := 0; w < f.clients; w++ {
		wg.Add(1)
		go worker(w, false)
	}
	for w := 0; w < f.overloadClients; w++ {
		wg.Add(1)
		go worker(f.clients+w, true)
	}
	time.Sleep(f.steady)
	tr.phase.Store(1)
	clientGate.Unlock() // open the gate: overload clients start
	fmt.Printf("slo: overload phase: +%d clients for %v\n", f.overloadClients, f.overload)
	time.Sleep(f.overload)
	close(stop)
	wg.Wait()

	// Assemble and grade the report.
	rep := sloReport{
		Tenants:        f.tenants,
		TimeoutMS:      f.timeoutMS,
		MaxInflight:    f.maxInflight,
		MaxQueue:       f.maxQueue,
		Steady:         tr.counts[0],
		Overload:       tr.counts[1],
		RetryAfterSeen: tr.retryAfter.Load(),
		RetryMax:       retryMax,
		Retries:        retriesIssued.Load(),
	}
	if tot := rep.Overload.total(); tot > 0 {
		rep.ShedRate = float64(rep.Overload.Shed) / float64(tot)
	}
	if tot := rep.Steady.total() + rep.Overload.total(); tot > 0 {
		rep.DeadlineMissRate = float64(rep.Steady.Deadline+rep.Overload.Deadline) / float64(tot)
	}
	tr.mu.Lock()
	sort.Strings(tr.order)
	for _, route := range tr.order {
		obs := tr.byRoute[route]
		ms := make([]float64, len(obs))
		for i, o := range obs {
			ms[i] = o.ms
		}
		maxMS := 0.0
		for _, v := range ms {
			if v > maxMS {
				maxMS = v
			}
		}
		// The 5 slowest requests, slowest first, named by the trace id
		// the client minted — the handle for /debug/trace/{id} and for
		// grepping the server's slow-query log.
		slowest := make([]sloObs, len(obs))
		copy(slowest, obs)
		sort.Slice(slowest, func(a, b int) bool { return slowest[a].ms > slowest[b].ms })
		if len(slowest) > 5 {
			slowest = slowest[:5]
		}
		slowIDs := make([]string, 0, len(slowest))
		for _, o := range slowest {
			slowIDs = append(slowIDs, o.traceID)
		}
		rep.Routes = append(rep.Routes, sloRouteStats{
			Route: route, N: len(ms),
			P50MS:           stats.Quantile(ms, 0.50),
			P95MS:           stats.Quantile(ms, 0.95),
			P99MS:           stats.Quantile(ms, 0.99),
			MaxMS:           maxMS,
			SlowestTraceIDs: slowIDs,
		})
	}
	tr.mu.Unlock()

	if rep.Steady.ServerErr+rep.Overload.ServerErr > 0 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"server 5xx under load: %d steady, %d overload",
			rep.Steady.ServerErr, rep.Overload.ServerErr))
	}
	if rep.Steady.Transport+rep.Overload.Transport > 0 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"transport failures: %d steady, %d overload (server collapsed?)",
			rep.Steady.Transport, rep.Overload.Transport))
	}
	if f.requireShed && rep.Overload.Shed == 0 {
		rep.Failures = append(rep.Failures,
			"overload produced zero 429s: admission control did not engage")
	}
	if f.requireShed && rep.Overload.Shed > 0 && !rep.RetryAfterSeen {
		rep.Failures = append(rep.Failures, "429 responses carried no Retry-After header")
	}
	rep.Pass = len(rep.Failures) == 0

	fmt.Printf("slo report:\n")
	fmt.Printf("  steady:   served=%d shed=%d deadline=%d 4xx=%d 5xx=%d transport=%d\n",
		rep.Steady.Served, rep.Steady.Shed, rep.Steady.Deadline,
		rep.Steady.ClientErr, rep.Steady.ServerErr, rep.Steady.Transport)
	fmt.Printf("  overload: served=%d shed=%d deadline=%d 4xx=%d 5xx=%d transport=%d (shed rate %.1f%%)\n",
		rep.Overload.Served, rep.Overload.Shed, rep.Overload.Deadline,
		rep.Overload.ClientErr, rep.Overload.ServerErr, rep.Overload.Transport,
		100*rep.ShedRate)
	fmt.Printf("  deadline miss rate: %.2f%%  retry-after seen: %v  client retries: %d (max %d/request)\n",
		100*rep.DeadlineMissRate, rep.RetryAfterSeen, rep.Retries, rep.RetryMax)
	for _, rs := range rep.Routes {
		fmt.Printf("  %-14s n=%-6d p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			rs.Route, rs.N, rs.P50MS, rs.P95MS, rs.P99MS, rs.MaxMS)
		if len(rs.SlowestTraceIDs) > 0 {
			fmt.Printf("    slowest trace ids: %v\n", rs.SlowestTraceIDs)
		}
	}

	if f.report != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		data = append(data, '\n')
		if err := os.WriteFile(f.report, data, 0o644); err != nil {
			log.Printf("loadgen: slo report: %v", err)
			return 1
		}
		fmt.Printf("slo: report written to %s\n", f.report)
	}
	if !rep.Pass {
		for _, msg := range rep.Failures {
			log.Printf("loadgen: SLO FAILED: %s", msg)
		}
		return 1
	}
	fmt.Printf("slo: PASS\n")
	return 0
}
