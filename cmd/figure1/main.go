// Command figure1 regenerates Figure 1 of the paper — the partition of
// the lower triangle of the collision grid into exponentially-sized
// squares G_{r,s} — and runs the Lemma 4 / Theorem 3 experiment: it
// builds the three staircase sequences, measures the empirical collision
// gap P1 − P2 of a concrete SIMPLE-ALSH on them, and compares it against
// the Lemma 4 bound.
//
// Usage:
//
//	figure1 [-n 15] [-bound] [-u 512] [-trials 3000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/grid"
	"repro/internal/lsh"
	"repro/internal/seqs"
	"repro/internal/stats"
	"repro/internal/transform"
	"repro/internal/vec"
)

func main() {
	n := flag.Int("n", 15, "grid size (must be 2^l − 1); 15 reproduces the figure")
	bound := flag.Bool("bound", false, "run the Lemma 4 empirical-gap experiment")
	masses := flag.Bool("masses", false, "run the full Lemma 4 mass-accounting ledger")
	u := flag.Float64("u", 512, "query ball radius U for the staircases")
	trials := flag.Int("trials", 3000, "hash samples for the empirical gap")
	flag.Parse()

	out, err := grid.Render(*n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure1: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# Figure 1: square partition of the lower triangle (n = %d)\n", *n)
	fmt.Printf("# cell value = level r of the covering square G_{r,s}; '·' = P2-node\n")
	fmt.Print(out)

	// Block geometry of the square the paper zooms into.
	if *n >= 15 {
		sq := grid.Square{R: 2, S: 0}
		rlo, rhi := sq.RowRange()
		clo, chi := sq.ColRange()
		llo, lhi := sq.LeftBlockCols()
		tlo, thi := sq.TopBlockRows()
		fmt.Printf("\n# G_{2,0}: rows [%d,%d) cols [%d,%d); left-block cols [%d,%d); top-block rows [%d,%d)\n",
			rlo, rhi, clo, chi, llo, lhi, tlo, thi)
	}

	if *masses {
		if err := runMasses(*trials); err != nil {
			fmt.Fprintf(os.Stderr, "figure1: %v\n", err)
			os.Exit(1)
		}
	}

	if !*bound {
		return
	}
	fmt.Printf("\n# Lemma 4 experiment: empirical gap of SIMPLE-ALSH on Theorem 3 staircases (U = %g)\n", *u)
	tb := stats.NewTable("case", "n", "s", "cs", "emp_P1", "emp_P2", "emp_gap", "lemma4_bound", "ok")
	for _, tc := range []struct {
		name  string
		build func() (*seqs.Staircase, error)
	}{
		{"case1(d=2)", func() (*seqs.Staircase, error) {
			return seqs.Case1(2, *u/5000, 0.5, *u)
		}},
		{"case2(d=2)", func() (*seqs.Staircase, error) {
			return seqs.Case2(2, *u/128, 0.5, *u)
		}},
		{"case3(RS)", func() (*seqs.Staircase, error) {
			return seqs.Case3(*u/128, 0.5, *u, seqs.FamilyReedSolomon, 7)
		}},
	} {
		st, err := tc.build()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure1: %s: %v\n", tc.name, err)
			continue
		}
		if err := st.Verify(1e-9); err != nil {
			fmt.Fprintf(os.Stderr, "figure1: %s staircase invalid: %v\n", tc.name, err)
			continue
		}
		m := truncPow2m1(st.Len())
		if m < 3 {
			fmt.Fprintf(os.Stderr, "figure1: %s too short (%d)\n", tc.name, st.Len())
			continue
		}
		fam, err := simpleALSH(len(st.P[0]), *u)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure1: %v\n", err)
			os.Exit(1)
		}
		p1, p2 := grid.EmpiricalGap(fam, st.P[:m], st.Q[:m], *trials, 11)
		b := grid.GapBound(m)
		tb.Add(tc.name, m, st.S, st.CS, p1, p2, p1-p2, b, p1-p2 <= b)
	}
	fmt.Print(tb.String())
}

// runMasses reproduces the proof's bookkeeping on a 15-long case-1
// staircase under SIMPLE-ALSH: per-square total/proper/shared/partially
// shared masses, the inequality chain, and the resulting gap bound.
func runMasses(trials int) error {
	const bigU = 1 << 16
	st, err := seqs.Case1_1D(1.0/256, 0.5, bigU)
	if err != nil {
		return err
	}
	if st.Len() < 15 {
		return fmt.Errorf("staircase too short: %d", st.Len())
	}
	fam, err := simpleALSH(1, bigU)
	if err != nil {
		return err
	}
	ma, err := grid.AccountMasses(fam, st.P[:15], st.Q[:15], trials, 13)
	if err != nil {
		return err
	}
	fmt.Printf("\n# Lemma 4 mass accounting (n = 15, SIMPLE-ALSH, %d sampled hashers)\n", trials)
	tb := stats.NewTable("square", "side", "total", "proper", "shared", "part_shared",
		"area*P1", "combined_bound")
	for _, sm := range ma.Squares {
		area := float64(sm.Side() * sm.Side())
		tb.Add(fmt.Sprintf("G(%d,%d)", sm.R, sm.S), sm.Side(), sm.Total, sm.Proper,
			sm.Shared, sm.PartShared, area*ma.P1,
			float64(2*sm.Side()+1)*sm.Proper+area*ma.P2)
	}
	fmt.Print(tb.String())
	fmt.Printf("empirical P1 = %.4f, P2 = %.4f, gap = %.4f (Lemma 4 bound %.4f)\n",
		ma.P1, ma.P2, ma.Gap(), grid.GapBound(ma.N))
	if err := ma.VerifyProof(1e-9); err != nil {
		return fmt.Errorf("proof inequalities violated: %w", err)
	}
	fmt.Println("proof inequalities: OK (decomposition, area bound, combined bound, Σproper ≤ 2n)")
	return nil
}

// truncPow2m1 returns the largest 2^l − 1 that is ≤ n.
func truncPow2m1(n int) int {
	g := 1
	for g*2-1 <= n {
		g *= 2
	}
	return g - 1
}

// simpleALSH composes the Neyshabur–Srebro map with hyperplane hashing.
func simpleALSH(d int, u float64) (lsh.Family, error) {
	tr, err := transform.NewSimple(d, u)
	if err != nil {
		return nil, err
	}
	inner, err := lsh.NewHyperplane(tr.OutputDim())
	if err != nil {
		return nil, err
	}
	return lsh.NewAsymmetric("simple-alsh", lsh.MapPair{
		Data: func(p vec.Vector) vec.Vector {
			// Guard tiny norm excesses from float accumulation.
			if n := vec.Norm(p); n > 1 {
				p = vec.Scaled(p, (1-1e-12)/n)
			}
			return tr.Data(p)
		},
		Query: func(q vec.Vector) vec.Vector {
			if n := vec.Norm(q); n > u {
				q = vec.Scaled(q, (1-1e-12)*u/n)
			}
			return tr.Query(q)
		},
	}, inner)
}
