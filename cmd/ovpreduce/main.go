// Command ovpreduce runs the Lemma 2 reduction end to end: it generates
// planted Orthogonal Vectors instances, embeds them with each of the
// three Lemma 3 gap embeddings, solves the resulting (cs, s) joins, and
// reports correctness and timings against the direct bit-packed solver.
// This is Theorems 1 and 2 "run forward": the reduction that transfers
// OVP hardness to approximate IPS join, demonstrated as a working
// algorithm.
//
// Usage:
//
//	ovpreduce [-n 64] [-m 48] [-d 16] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/embed"
	"repro/internal/ovp"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	n := flag.Int("n", 64, "|Q| (queries)")
	m := flag.Int("m", 48, "|P| (data)")
	d := flag.Int("d", 16, "OVP dimension")
	seed := flag.Uint64("seed", 1, "instance seed")
	flag.Parse()

	rng := xrand.New(*seed)
	pos, want := ovp.Planted(rng, *m, *n, *d, 0.2, true)
	neg, _ := ovp.Planted(rng, *m, *n, *d, 0.2, false)

	fmt.Printf("# OVP → IPS join reduction (|P|=%d |Q|=%d d=%d)\n", *m, *n, *d)
	tb := stats.NewTable("solver", "d2", "cs", "s", "planted_found", "negative_clean", "time")

	run := func(name string, d2 int, cs, s float64, solve func(*ovp.Instance) (ovp.Pair, bool)) {
		start := time.Now()
		got, ok := solve(pos)
		_, falsePos := solve(neg)
		elapsed := time.Since(start)
		tb.Add(name, d2, cs, s, ok && got == want, !falsePos, elapsed.Round(time.Microsecond))
	}

	run("naive (bit-packed)", *d, 0, 1, ovp.SolveNaive)

	e1, err := embed.NewSignedPM1(*d)
	if err != nil {
		fail(err)
	}
	p1 := e1.Params()
	run("E1 signed {-1,1}", p1.D2, p1.CS, p1.S, func(in *ovp.Instance) (ovp.Pair, bool) {
		return ovp.SolveViaSignsEmbedding(in, e1)
	})

	for q := 1; q <= 2; q++ {
		e2, err := embed.NewChebyshevPM1(*d, q)
		if err != nil {
			fail(err)
		}
		p2 := e2.Params()
		run(fmt.Sprintf("E2 Chebyshev q=%d", q), p2.D2, p2.CS, p2.S,
			func(in *ovp.Instance) (ovp.Pair, bool) {
				return ovp.SolveViaSignsEmbedding(in, e2)
			})
	}

	for _, k := range []int{4, *d} {
		if k > *d {
			continue
		}
		e3, err := embed.NewChopped01(*d, k)
		if err != nil {
			fail(err)
		}
		p3 := e3.Params()
		run(fmt.Sprintf("E3 chopped k=%d", k), p3.D2, p3.CS, p3.S,
			func(in *ovp.Instance) (ovp.Pair, bool) {
				return ovp.SolveViaBitsEmbedding(in, e3)
			})
	}

	fmt.Print(tb.String())
	fmt.Println("# planted_found: the certified orthogonal pair was recovered through the embedding.")
	fmt.Println("# negative_clean: no pair reported on the certified orthogonal-free instance.")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ovpreduce: %v\n", err)
	os.Exit(1)
}
