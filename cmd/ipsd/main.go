// Command ipsd serves the inner-product search & join API over HTTP.
//
// Usage:
//
//	ipsd [-addr :7070] [-shards 4] [-cache 4096] [-workers 0] [-pprof addr]
//
// Collections are created lazily by the first PUT /collections/{name};
// see the README for the JSON API and a curl quickstart. -pprof serves
// net/http/pprof on a separate listener (e.g. -pprof localhost:6060)
// so profiles never share a port with — or leak onto — the public API.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", 4, "default shards per collection")
	cache := flag.Int("cache", 4096, "query cache capacity (negative disables)")
	workers := flag.Int("workers", 0, "batch executor workers (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "hashing seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	flag.Parse()

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("ipsd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("ipsd: pprof: %v", err)
			}
		}()
	}

	srv := server.New(server.Config{
		DefaultShards: *shards,
		CacheCapacity: *cache,
		Workers:       *workers,
		Seed:          *seed,
	})
	defer srv.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           server.NewHandler(srv),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("ipsd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("ipsd: shutdown: %v", err)
		}
	}()

	log.Printf("ipsd: listening on %s (shards=%d cache=%d workers=%d)",
		*addr, *shards, *cache, srv.Stats().Workers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ipsd: %v", err)
	}
	<-done
}
