// Command ipsd serves the inner-product search & join API over HTTP.
//
// Usage:
//
//	ipsd [-addr :7070] [-shards 4] [-cache 4096] [-workers 0] [-pprof addr]
//	     [-data dir] [-fsync always|interval|never] [-fsync-interval 100ms]
//	     [-checkpoint-bytes 67108864]
//	     [-default-timeout 0] [-max-inflight 0] [-max-queue 0]
//	     [-max-body-bytes 33554432] [-rerank-overfetch 4]
//	     [-recover strict|quarantine] [-scrub-interval 0]
//	     [-read-timeout 30s] [-write-timeout 60s] [-idle-timeout 2m]
//	     [-trace] [-trace-buffer 32] [-slow-query-ms 0]
//	     [-log-format text|json]
//	     [-fault-ops ...] [-fault-rate p] [-fault-count n] [-fault-seed s]
//
// Collections are created lazily by the first PUT /collections/{name};
// see the README for the JSON API and a curl quickstart. -pprof serves
// net/http/pprof on a separate listener (e.g. -pprof localhost:6060)
// so profiles never share a port with — or leak onto — the public API.
//
// With -data, every collection is durable: ingests are written to a
// per-collection WAL before they are acknowledged (per the -fsync
// policy), the WAL is compacted into columnar segment snapshots once
// it exceeds -checkpoint-bytes, and a restart recovers every
// collection from its manifest, newest valid segment and WAL tail.
//
// Collections created with "precision": "f32" or "int8" store a
// quantized scan copy alongside the exact f64 rows; -rerank-overfetch
// sets the server-wide candidate multiplier used when re-ranking
// quantized results through the f64 store (a collection's own
// "overfetch" spec field takes priority).
//
// -trace (on by default) gives every request a trace: W3C traceparent
// headers are honored and echoed, per-stage timings feed the
// ipsd_stage_seconds histograms, the last -trace-buffer traces per
// route are browsable at /debug/requests and /debug/trace/{id}, and
// requests slower than -slow-query-ms (0 disables) emit one structured
// log line carrying the full span tree. -log-format json switches all
// logging to one-JSON-object-per-line for machine ingestion.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the HTTP listener stops
// accepting, in-flight requests drain, and the WALs are flushed and
// fsynced before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/errfs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", 4, "default shards per collection")
	cache := flag.Int("cache", 4096, "query cache capacity (negative disables)")
	workers := flag.Int("workers", 0, "batch executor workers (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "hashing seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty disables)")
	dataDir := flag.String("data", "", "data directory for durable collections (empty = in-memory only)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	ckptBytes := flag.Int64("checkpoint-bytes", 64<<20, "WAL bytes before compacting into a segment snapshot")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for queries that carry no timeout_ms (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing queries per collection (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "queries allowed to wait for an admission slot before shedding with 429 (negative = unbounded)")
	maxBody := flag.Int64("max-body-bytes", 32<<20, "request body cap on mutating routes (negative disables)")
	rerankOverfetch := flag.Int("rerank-overfetch", 0, "candidate multiplier for quantized-tier re-ranking (0 = built-in default)")
	recoverMode := flag.String("recover", "strict", "boot behavior when a collection fails recovery: strict (fail the boot) | quarantine (serve it as 503, directory untouched)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background segment integrity scrub period per collection (0 disables)")
	tracing := flag.Bool("trace", true, "per-request tracing: /debug/requests, /debug/trace/{id}, ipsd_stage_seconds")
	traceBuffer := flag.Int("trace-buffer", 0, "finished traces kept per route for the debug endpoints (0 = built-in default)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log one structured line (with the full span tree) for requests slower than this; 0 disables")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	faultOps := flag.String("fault-ops", "", "CHAOS: comma-separated fs operation classes to fault (write,sync,rename,...); empty disables injection")
	faultRate := flag.Float64("fault-rate", 0, "CHAOS: per-call fault probability for -fault-ops (0 = every eligible call)")
	faultCount := flag.Int("fault-count", 0, "CHAOS: faults to inject per op class before the schedule heals (0 = unlimited)")
	faultAfter := flag.Int("fault-after", 0, "CHAOS: let this many matching calls through before faults may fire")
	faultSeed := flag.Uint64("fault-seed", 1, "CHAOS: seed for the probabilistic fault schedule (reproducible runs)")
	faultPath := flag.String("fault-path", "", "CHAOS: only fault paths containing this substring")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout (0 disables)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout (0 disables)")
	flag.Parse()

	switch *logFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text", "":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fatal(fmt.Errorf("-log-format: unknown format %q (want text or json)", *logFormat))
	}

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			slog.Info("ipsd: pprof serving", "url", "http://"+*pprofAddr+"/debug/pprof/")
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				slog.Error("ipsd: pprof", "error", err)
			}
		}()
	}

	// -fault-ops turns the production filesystem into a seeded fault
	// injector: the chaos smoke runs a real ipsd process against a
	// finite, reproducible schedule of disk faults and then verifies
	// reads stayed clean and the collections healed.
	var fsys errfs.FS
	if *faultOps != "" {
		faulty := errfs.NewFaulty(nil, *faultSeed)
		for _, spelling := range strings.Split(*faultOps, ",") {
			op, err := errfs.ParseOp(strings.TrimSpace(spelling))
			if err != nil {
				fatal(fmt.Errorf("-fault-ops: %w", err))
			}
			faulty.Inject(errfs.Rule{
				Op:    op,
				Path:  *faultPath,
				After: *faultAfter,
				Count: *faultCount,
				Prob:  *faultRate,
			})
		}
		slog.Warn("ipsd: CHAOS fault injection armed",
			"ops", *faultOps, "rate", *faultRate, "count", *faultCount,
			"after", *faultAfter, "seed", *faultSeed, "path", *faultPath)
		fsys = faulty
	}

	srv, err := server.Open(server.Config{
		DefaultShards:   *shards,
		CacheCapacity:   *cache,
		Workers:         *workers,
		Seed:            *seed,
		DataDir:         *dataDir,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncEvery,
		CheckpointBytes: *ckptBytes,
		RecoverMode:     *recoverMode,
		ScrubInterval:   *scrubInterval,
		FS:              fsys,
		DefaultTimeout:  *defaultTimeout,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		MaxBodyBytes:    *maxBody,
		RerankOverfetch: *rerankOverfetch,
		Tracing:         *tracing,
		TraceBuffer:     *traceBuffer,
		SlowQueryMS:     *slowQueryMS,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		total := 0
		for _, name := range srv.Collections() {
			if c, ok := srv.Collection(name); ok {
				total += c.Len()
			}
		}
		slog.Info("ipsd: recovered collections",
			"collections", len(srv.Collections()), "records", total,
			"data_dir", *dataDir, "fsync", *fsync)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           server.NewHandler(srv),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		slog.Info("ipsd: shutting down", "signal", s.String())
		// Stop accepting and drain in-flight requests (which also
		// quiesces the worker pool and any durable ingests)...
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			slog.Error("ipsd: shutdown", "error", err)
		}
	}()

	slog.Info("ipsd: listening", "addr", *addr, "shards", *shards,
		"cache", *cache, "workers", srv.Stats().Workers, "trace", *tracing)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
	// ...then flush and fsync every collection's WAL so the final
	// acknowledged writes are durable even under -fsync interval/never.
	if err := srv.Close(); err != nil {
		slog.Error("ipsd: close", "error", err)
		os.Exit(1)
	}
	slog.Info("ipsd: wal flushed, bye")
}

// fatal logs through the configured slog handler and exits nonzero,
// the slog equivalent of log.Fatalf.
func fatal(err error) {
	slog.Error("ipsd: fatal", "error", err)
	os.Exit(1)
}
