// Command ipsjoin is the general join driver: it generates (or loads) a
// workload, packs it into columnar flat stores, runs the selected join
// engine on the signed or unsigned (cs, s) join, verifies the
// Definition 1 guarantee by brute force, and prints a summary with work
// counters. Workloads can be persisted with -save and replayed with
// -load for exact reruns.
//
// Engines: "exact" is the blocked tiled P×Q kernel (the default),
// "normpruned" adds Cauchy–Schwarz tile skipping, "lsh" and "sketch"
// are the approximate engines, and "naive" is the row-slice reference
// scan (the benchmark baseline; it thresholds at s and ignores -c and
// -topk). -workers > 1 spreads query tiles over a bounded worker pool.
//
// Usage:
//
//	ipsjoin [-engine exact|normpruned|lsh|sketch|naive]
//	        [-variant signed|unsigned] [-workload planted|latent|binary]
//	        [-n 1000] [-nq 100] [-d 32] [-s 0.9] [-c 0.5] [-topk 0]
//	        [-workers 1] [-kappa 3] [-k 8] [-l 16] [-seed 1] [-verify]
//	        [-save PREFIX] [-load PREFIX]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flat"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/server"
	"repro/internal/vec"
	"repro/internal/vecio"
	"repro/internal/xrand"
)

func main() {
	engine := flag.String("engine", "exact", "exact | normpruned | lsh | sketch | naive")
	variant := flag.String("variant", "signed", "signed | unsigned")
	workload := flag.String("workload", "planted", "planted | latent | binary")
	n := flag.Int("n", 1000, "|P|")
	nq := flag.Int("nq", 100, "|Q|")
	d := flag.Int("d", 32, "dimension")
	s := flag.Float64("s", 0.9, "promise threshold s")
	c := flag.Float64("c", 0.5, "approximation factor c (exact engines accept at c·s too)")
	topk := flag.Int("topk", 0, "report up to k pairs per query (0 = best pair only)")
	workers := flag.Int("workers", 1, "parallel query-tile workers")
	kappa := flag.Float64("kappa", 3, "sketch ℓ_κ parameter")
	k := flag.Int("k", 8, "LSH hashes per table")
	l := flag.Int("l", 16, "LSH tables")
	seed := flag.Uint64("seed", 1, "workload + algorithm seed")
	verify := flag.Bool("verify", true, "brute-force verify the (cs,s) guarantee")
	save := flag.String("save", "", "write the workload to PREFIX.p / PREFIX.q")
	load := flag.String("load", "", "read the workload from PREFIX.p / PREFIX.q")
	flag.Parse()

	var P, Q []vec.Vector
	if *load != "" {
		var err error
		if P, Q, err = loadWorkload(*load); err != nil {
			fail(err)
		}
		if len(P) == 0 || len(Q) == 0 {
			fail(fmt.Errorf("loaded workload is empty"))
		}
		*d = len(P[0])
	} else {
		P, Q = generate(xrand.New(*seed), *workload, *n, *nq, *d, *s)
	}
	if *save != "" {
		if err := saveWorkload(*save, P, Q); err != nil {
			fail(err)
		}
		fmt.Printf("workload saved to %s.p / %s.q\n", *save, *save)
	}

	sp := core.Spec{S: *s, C: *c}
	switch *variant {
	case "signed":
		sp.Variant = core.Signed
	case "unsigned":
		sp.Variant = core.Unsigned
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	if err := sp.Validate(); err != nil {
		fail(err)
	}

	fp, err := flat.FromVectors(P)
	if err != nil {
		fail(err)
	}
	fq, err := flat.FromVectors(Q)
	if err != nil {
		fail(err)
	}

	opts := join.Opts{Unsigned: sp.Variant == core.Unsigned, TopK: *topk}
	if *workers > 1 {
		opts.Runner = server.NewPool(*workers)
	}

	var eng join.Engine
	switch *engine {
	case "exact", "tiled":
		eng = join.Tiled{}
	case "normpruned":
		eng = join.NormPruned{}
	case "lsh":
		eng = join.LSH{
			NewFamily: func(dim int) (lsh.Family, error) { return lsh.NewHyperplane(dim) },
			K:         *k, L: *l, Seed: *seed,
		}
	case "sketch":
		eng = join.Sketch{Kappa: *kappa, Copies: 9, Seed: *seed}
	case "naive":
		// Reference scan over the row slices; thresholds at s.
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}

	// Exact engines accept at c·s like the approximate ones; with the
	// default -c they mirror the approximate runs, with -c 1 they solve
	// the strict exact join.
	name := *engine
	start := time.Now()
	var res join.Result
	if eng != nil {
		if res, err = eng.Join(fp, fq, sp.S, sp.CS(), opts); err != nil {
			fail(err)
		}
		name = eng.Name()
	} else if sp.Variant == core.Signed {
		res = join.NaiveSigned(P, Q, sp.S)
	} else {
		res = join.NaiveUnsigned(P, Q, sp.S)
	}
	elapsed := time.Since(start)

	fmt.Printf("engine=%s variant=%s workload=%s |P|=%d |Q|=%d d=%d s=%g c=%g topk=%d workers=%d\n",
		name, sp.Variant, *workload, len(P), len(Q), *d, sp.S, sp.C, *topk, *workers)
	fmt.Printf("matches=%d compared=%d (naive would compare %d) time=%s\n",
		len(res.Matches), res.Compared, len(P)*len(Q), elapsed.Round(time.Microsecond))
	if *verify {
		if err := core.CheckGuarantee(P, Q, res, sp); err != nil {
			fmt.Printf("guarantee: VIOLATED — %v\n", err)
			os.Exit(2)
		}
		fmt.Println("guarantee: OK (Definition 1 verified by brute force)")
	}
}

// generate builds the selected synthetic workload.
func generate(rng *xrand.RNG, workload string, n, nq, d int, s float64) (P, Q []vec.Vector) {
	switch workload {
	case "planted":
		hot := make([]int, 0, nq/4)
		for i := 0; i < nq; i += 4 {
			hot = append(hot, i)
		}
		P, Q, _ = dataset.Planted(rng, n, nq, d, s*1.05, hot)
	case "latent":
		lf := dataset.NewLatentFactor(rng, n, nq, d, 0.5)
		lf.ScaleItemsToUnitBall()
		P, Q = lf.Items, lf.Users
	case "binary":
		P = dataset.BinarySets(rng, n, d, max(2, d/8), 0.8)
		Q = dataset.BinarySets(rng, nq, d, max(2, d/8), 0.8)
	default:
		fail(fmt.Errorf("unknown workload %q", workload))
	}
	return P, Q
}

// saveWorkload writes P and Q in the vecio binary format.
func saveWorkload(prefix string, P, Q []vec.Vector) error {
	for _, part := range []struct {
		suffix string
		vs     []vec.Vector
	}{{".p", P}, {".q", Q}} {
		f, err := os.Create(prefix + part.suffix)
		if err != nil {
			return err
		}
		if err := vecio.WriteDense(f, part.vs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// loadWorkload reads P and Q written by saveWorkload.
func loadWorkload(prefix string) (P, Q []vec.Vector, err error) {
	read := func(path string) ([]vec.Vector, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return vecio.ReadDense(f)
	}
	if P, err = read(prefix + ".p"); err != nil {
		return nil, nil, err
	}
	if Q, err = read(prefix + ".q"); err != nil {
		return nil, nil, err
	}
	return P, Q, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ipsjoin: %v\n", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
