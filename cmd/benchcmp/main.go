// Command benchcmp compares two BENCH_*.json files produced by
// scripts/bench.sh and prints a benchstat-style delta table: time and
// allocations per op, old vs new, with the relative change. By default
// it is report-only — regressions are flagged in the output but the
// exit code stays zero, so CI and bench.sh can surface the comparison
// without gating on a noisy box.
//
// With -gate it becomes an enforcing check: the exit code is non-zero
// if any benchmark (optionally restricted by -match) got slower than
// the given percentage. CI uses this to fail a change that regresses
// the flat scan rate with zero tombstones by more than 10%.
//
// Usage:
//
//	benchcmp [-gate pct] [-match regexp] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
)

type benchFile struct {
	Commit     string  `json:"commit"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// delta renders the old→new relative change, flagging slowdowns above
// 10% (likely real even on a noisy box) with a trailing '!'.
func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	pct := (new - old) / old * 100
	mark := ""
	if pct > 10 {
		mark = " !"
	}
	return fmt.Sprintf("%+.1f%%%s", pct, mark)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	gate := flag.Float64("gate", 0, "exit non-zero if a matched benchmark's ns/op regresses more than this percent (0 = report only)")
	match := flag.String("match", "", "regexp restricting which benchmarks -gate applies to (default: all)")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatalf("usage: benchcmp [-gate pct] [-match regexp] OLD.json NEW.json")
	}
	var matchRE *regexp.Regexp
	if *match != "" {
		var err error
		if matchRE, err = regexp.Compile(*match); err != nil {
			log.Fatalf("-match: %v", err)
		}
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	oldBy := make(map[string]entry, len(oldF.Benchmarks))
	for _, e := range oldF.Benchmarks {
		oldBy[e.Name] = e
	}
	fmt.Printf("benchcmp %s (%s) -> %s (%s)\n", flag.Arg(0), oldF.Commit, flag.Arg(1), newF.Commit)
	fmt.Printf("%-46s %14s %14s %10s %18s\n", "benchmark", "old ns/op", "new ns/op", "time", "allocs|MB/s old->new")
	var gated, compared int
	var offenders []string
	for _, e := range newF.Benchmarks {
		o, ok := oldBy[e.Name]
		if !ok {
			mbs := ""
			if e.MBPerS != nil {
				mbs = fmt.Sprintf("%.0f MB/s", *e.MBPerS)
			}
			fmt.Printf("%-46s %14s %14.0f %10s %18s\n", e.Name, "(new)", e.NsPerOp, "", mbs)
			continue
		}
		allocs := ""
		if o.AllocsPerOp != nil && e.AllocsPerOp != nil {
			allocs = fmt.Sprintf("%.0f -> %.0f (%s)", *o.AllocsPerOp, *e.AllocsPerOp, delta(*o.AllocsPerOp, *e.AllocsPerOp))
		} else if o.MBPerS != nil && e.MBPerS != nil {
			allocs = fmt.Sprintf("%.0f -> %.0f MB/s", *o.MBPerS, *e.MBPerS)
		}
		fmt.Printf("%-46s %14.0f %14.0f %10s %18s\n", e.Name, o.NsPerOp, e.NsPerOp, delta(o.NsPerOp, e.NsPerOp), allocs)
		delete(oldBy, e.Name)
		if *gate > 0 && (matchRE == nil || matchRE.MatchString(e.Name)) && o.NsPerOp > 0 {
			compared++
			if pct := (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100; pct > *gate {
				gated++
				offenders = append(offenders, fmt.Sprintf("%s: %+.1f%%", e.Name, pct))
			}
		}
	}
	for _, e := range oldF.Benchmarks {
		if _, gone := oldBy[e.Name]; gone {
			fmt.Printf("%-46s %14.0f %14s %10s\n", e.Name, e.NsPerOp, "(gone)", "")
		}
	}
	if *gate > 0 {
		if compared == 0 {
			log.Fatalf("-gate %.0f: no benchmarks matched %q in both files", *gate, *match)
		}
		if gated > 0 {
			for _, off := range offenders {
				log.Printf("regression over %.0f%%: %s", *gate, off)
			}
			log.Fatalf("%d/%d gated benchmarks regressed more than %.0f%%", gated, compared, *gate)
		}
		fmt.Printf("gate ok: %d benchmarks within %.0f%%\n", compared, *gate)
	}
}
