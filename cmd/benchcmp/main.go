// Command benchcmp compares two BENCH_*.json files produced by
// scripts/bench.sh and prints a benchstat-style delta table: time and
// allocations per op, old vs new, with the relative change. It is
// report-only — regressions are flagged in the output but the exit
// code stays zero, so CI and bench.sh can surface the comparison
// without gating on a noisy box.
//
// Usage:
//
//	benchcmp OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type benchFile struct {
	Commit     string  `json:"commit"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func load(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// delta renders the old→new relative change, flagging slowdowns above
// 10% (likely real even on a noisy box) with a trailing '!'.
func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	pct := (new - old) / old * 100
	mark := ""
	if pct > 10 {
		mark = " !"
	}
	return fmt.Sprintf("%+.1f%%%s", pct, mark)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")
	if len(os.Args) != 3 {
		log.Fatalf("usage: benchcmp OLD.json NEW.json")
	}
	oldF, err := load(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	newF, err := load(os.Args[2])
	if err != nil {
		log.Fatal(err)
	}
	oldBy := make(map[string]entry, len(oldF.Benchmarks))
	for _, e := range oldF.Benchmarks {
		oldBy[e.Name] = e
	}
	fmt.Printf("benchcmp %s (%s) -> %s (%s)\n", os.Args[1], oldF.Commit, os.Args[2], newF.Commit)
	fmt.Printf("%-46s %14s %14s %10s %18s\n", "benchmark", "old ns/op", "new ns/op", "time", "allocs old->new")
	for _, e := range newF.Benchmarks {
		o, ok := oldBy[e.Name]
		if !ok {
			fmt.Printf("%-46s %14s %14.0f %10s\n", e.Name, "(new)", e.NsPerOp, "")
			continue
		}
		allocs := ""
		if o.AllocsPerOp != nil && e.AllocsPerOp != nil {
			allocs = fmt.Sprintf("%.0f -> %.0f (%s)", *o.AllocsPerOp, *e.AllocsPerOp, delta(*o.AllocsPerOp, *e.AllocsPerOp))
		}
		fmt.Printf("%-46s %14.0f %14.0f %10s %18s\n", e.Name, o.NsPerOp, e.NsPerOp, delta(o.NsPerOp, e.NsPerOp), allocs)
		delete(oldBy, e.Name)
	}
	for _, e := range oldF.Benchmarks {
		if _, gone := oldBy[e.Name]; gone {
			fmt.Printf("%-46s %14.0f %14s %10s\n", e.Name, e.NsPerOp, "(gone)", "")
		}
	}
}
