// Command figure2 regenerates Figure 2 of the paper: the ρ exponents of
// the three LSH constructions for signed inner product search —
// DATA-DEP (the paper's §4.1 bound, equation 3), SIMP (Neyshabur–Srebro
// SIMPLE-ALSH) and MH-ALSH (Shrivastava–Li asymmetric minwise hashing,
// binary data) — as functions of the normalized threshold s for one or
// more approximation factors c.
//
// With -mc it additionally Monte-Carlo-validates the SIMP curve by
// estimating collision probabilities of a real hyperplane-LSH
// implementation composed with the SIMPLE transform.
//
// Usage:
//
//	figure2 [-c 0.5,0.7,0.9] [-points 19] [-csv] [-mc] [-trials 20000]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/lsh"
	"repro/internal/stats"
	"repro/internal/vec"
)

func main() {
	cList := flag.String("c", "0.5,0.7,0.9", "comma-separated approximation factors")
	points := flag.Int("points", 19, "number of s samples in (0,1)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	mc := flag.Bool("mc", false, "Monte-Carlo validate the SIMP curve with real hashes")
	trials := flag.Int("trials", 20000, "Monte-Carlo trials per point")
	flag.Parse()

	cs, err := parseFloats(*cList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figure2: %v\n", err)
		os.Exit(1)
	}
	for _, c := range cs {
		fmt.Printf("# Figure 2, c = %.3g\n", c)
		header := []string{"s", "rho_datadep", "rho_simp", "rho_mhalsh"}
		if *mc {
			header = append(header, "rho_simp_mc")
		}
		tb := stats.NewTable(header...)
		for _, pt := range lsh.Figure2Series(c, *points) {
			row := []any{pt.S, pt.DataDep, pt.Simp, pt.MHALSH}
			if *mc {
				row = append(row, mcSimpleRho(c, pt.S, *trials))
			}
			tb.Add(row...)
		}
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Print(tb.String())
		}
		fmt.Println()
	}
}

// mcSimpleRho estimates the SIMP exponent log P1/log P2 by hashing unit
// vectors at inner products s and c·s with real hyperplane hashes.
func mcSimpleRho(c, s float64, trials int) float64 {
	const d = 8
	fam, err := lsh.NewHyperplane(d)
	if err != nil {
		panic(err)
	}
	pair := func(t float64) (vec.Vector, vec.Vector) {
		p := vec.New(d)
		p[0] = 1
		q := vec.New(d)
		q[0] = t
		q[1] = math.Sqrt(1 - t*t)
		return p, q
	}
	p1p, p1q := pair(s)
	p2p, p2q := pair(c * s)
	p1 := lsh.EstimateCollision(fam, p1p, p1q, trials, 101)
	p2 := lsh.EstimateCollision(fam, p2p, p2q, trials, 102)
	if p1 <= 0 || p1 >= 1 || p2 <= 0 || p2 >= 1 {
		return math.NaN()
	}
	return math.Log(p1) / math.Log(p2)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		if v <= 0 || v >= 1 {
			return nil, fmt.Errorf("c=%v out of (0,1)", v)
		}
		out = append(out, v)
	}
	return out, nil
}
