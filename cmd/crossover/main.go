// Command crossover runs the ablation study of DESIGN.md experiment
// E-X: who wins where among the join/search strategies — exact scan
// (sequential and parallel), norm-pruned scan, ball tree, asymmetric
// LSH, and the §4.3 sketch structure — as the data size grows, on the
// latent-factor MIPS workload. It also runs the Valiant-style
// aggregation detector against the naive correlation scan (the
// permissible side of Table 1 for unsigned {−1,1}).
//
// Usage:
//
//	crossover [-sizes 1000,2000,4000] [-d 24] [-queries 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	ips "repro"
	"repro/internal/corr"
	"repro/internal/dataset"
	"repro/internal/mips"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	sizesFlag := flag.String("sizes", "1000,2000,4000", "data sizes to sweep")
	d := flag.Int("d", 24, "vector dimension / rank")
	queries := flag.Int("queries", 40, "queries per size")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossover: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("# MIPS crossover (latent-factor workload, d=%d, %d queries/size)\n", *d, *queries)
	tb := stats.NewTable("n", "method", "avg_query", "recall@1", "notes")
	for _, n := range sizes {
		rng := xrand.New(*seed + uint64(n))
		lf := dataset.NewLatentFactor(rng, n, *queries, *d, 0.6)
		lf.ScaleItemsToUnitBall()

		exactIdx := make([]int, *queries)
		exactTime := timeIt(func() {
			for qi, q := range lf.Users {
				r := mips.LinearScan(lf.Items, q)
				exactIdx[qi] = r.Index
			}
		})
		tb.Add(n, "exact-scan", perQuery(exactTime, *queries), 1.0, "ground truth")

		np, err := mips.NewNormPruned(lf.Items)
		if err != nil {
			fail(err)
		}
		scanned := 0
		npHits := 0
		npTime := timeIt(func() {
			for qi, q := range lf.Users {
				r := np.Query(q)
				scanned += r.Scanned
				if r.Index == exactIdx[qi] {
					npHits++
				}
			}
		})
		tb.Add(n, "norm-prune", perQuery(npTime, *queries),
			float64(npHits)/float64(*queries),
			fmt.Sprintf("scanned %.0f%%", 100*float64(scanned)/float64(n**queries)))

		bt, err := mips.NewBallTree(lf.Items, 32)
		if err != nil {
			fail(err)
		}
		btHits, btScanned := 0, 0
		btTime := timeIt(func() {
			for qi, q := range lf.Users {
				r := bt.Query(q)
				btScanned += r.Scanned
				if r.Index == exactIdx[qi] {
					btHits++
				}
			}
		})
		tb.Add(n, "ball-tree", perQuery(btTime, *queries),
			float64(btHits)/float64(*queries),
			fmt.Sprintf("scanned %.0f%%", 100*float64(btScanned)/float64(n**queries)))

		ix, err := ips.NewMIPSIndex(lf.Items, ips.MIPSOptions{K: 6, L: 32, Seed: *seed})
		if err != nil {
			fail(err)
		}
		lshHits := 0
		lshTime := timeIt(func() {
			for qi, q := range lf.Users {
				got, _ := ix.Query(q)
				if got == exactIdx[qi] {
					lshHits++
				}
			}
		})
		tb.Add(n, "lsh (§4.1)", perQuery(lshTime, *queries),
			float64(lshHits)/float64(*queries), "approximate")

		sk, err := ips.NewSketchMIPS(lf.Items, 3, 7, *seed)
		if err != nil {
			fail(err)
		}
		skHits := 0
		skTime := timeIt(func() {
			for qi, q := range lf.Users {
				got, _ := sk.Query(q)
				if got == exactIdx[qi] {
					skHits++
				}
			}
		})
		tb.Add(n, "sketch (§4.3)", perQuery(skTime, *queries),
			float64(skHits)/float64(*queries),
			fmt.Sprintf("c-MIPS, c=%.3f", ips.SketchJoinGuaranteedC(n, 3)))
	}
	fmt.Print(tb.String())

	fmt.Println("\n# Outlier correlation: naive vs Valiant-style aggregation (unsigned {−1,1})")
	ctb := stats.NewTable("n", "d", "g", "rho", "naive_work", "agg_work", "agg_found")
	for _, n := range []int{64, 128, 256} {
		const dd = 4096
		g := 4
		rho := 2 * corr.MinSignal(n, dd, g)
		if rho > 1 {
			continue
		}
		rng := xrand.New(*seed + uint64(n))
		in, err := corr.NewInstance(rng, n, n, dd, rho)
		if err != nil {
			fail(err)
		}
		naive := corr.Naive(in)
		agg, err := corr.Aggregate(in, g, rng)
		if err != nil {
			fail(err)
		}
		ctb.Add(n, dd, g, rho, naive.Work, agg.Work,
			agg.PIdx == in.PIdx && agg.QIdx == in.QIdx)
	}
	fmt.Print(ctb.String())
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func perQuery(d time.Duration, q int) string {
	return (d / time.Duration(q)).Round(time.Microsecond).String()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "crossover: %v\n", err)
	os.Exit(1)
}
