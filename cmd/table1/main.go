// Command table1 regenerates Table 1 of the paper: the hard and
// permissible approximation ranges for signed/unsigned (cs, s) IPS join
// over {−1,1}^d and {0,1}^d.
//
// The hard side is *constructive*: for each row it instantiates the
// Lemma 3 gap embedding, certifies its exact (cs, s) parameters on
// planted OVP instances (the Lemma 2 pipeline), and reports the achieved
// approximation factor c and the Theorem 2 ratio log(s/d)/log(cs/d).
//
// The permissible side is *measured*: it runs the §4.3 sketch join
// (c = n^{−1/κ}) and the {0,1} MinHash-LSH join across a sweep of n and
// reports the empirical work exponents against the paper's predictions
// 2 − 2/κ and 1 + log(s/d)/log(cs/d).
//
// Usage:
//
//	table1 [-hard] [-permissible] [-quick]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/ovp"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	hard := flag.Bool("hard", true, "emit the hard-range (embedding) rows")
	perm := flag.Bool("permissible", true, "emit the permissible-range (algorithm) rows")
	quick := flag.Bool("quick", false, "smaller sweeps for fast runs")
	flag.Parse()

	if *hard {
		if err := hardRows(); err != nil {
			fmt.Fprintf(os.Stderr, "table1: %v\n", err)
			os.Exit(1)
		}
	}
	if *perm {
		if err := permissibleRows(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "table1: %v\n", err)
			os.Exit(1)
		}
	}
}

// hardRows certifies the Lemma 3 embeddings behind Table 1's hard ranges.
func hardRows() error {
	fmt.Println("# Table 1 — hard ranges (constructive: Lemma 3 embeddings, verified on planted OVP)")
	tb := stats.NewTable("problem", "embedding", "d1", "d2", "cs", "s",
		"c=cs/s", "ratio", "ovp_ok")
	rng := xrand.New(1)

	// Signed {−1,1}: embedding 1, hard for every c > 0 (cs = 0).
	for _, d := range []int{16, 32, 64} {
		e, err := embed.NewSignedPM1(d)
		if err != nil {
			return err
		}
		p := e.Params()
		ok := pipelineOK(rng, d, func(in *ovp.Instance) (ovp.Pair, bool) {
			return ovp.SolveViaSignsEmbedding(in, e)
		})
		tb.Add("signed {-1,1}", "E1", p.D1, p.D2, p.CS, p.S, p.C(), "->0", ok)
	}

	// Unsigned {−1,1}: embedding 2 (Chebyshev), c = 1/T_q(1+1/d) → e^{−Θ(q/√d)}.
	for _, pq := range [][2]int{{8, 1}, {8, 2}, {8, 3}, {16, 2}, {16, 3}} {
		d, q := pq[0], pq[1]
		e, err := embed.NewChebyshevPM1(d, q)
		if err != nil {
			return err
		}
		p := e.Params()
		ok := pipelineOK(rng, d, func(in *ovp.Instance) (ovp.Pair, bool) {
			return ovp.SolveViaSignsEmbedding(in, e)
		})
		tb.Add("unsigned {-1,1}", fmt.Sprintf("E2(q=%d)", q),
			p.D1, p.D2, p.CS, p.S, p.C(), p.Ratio(), ok)
	}

	// Unsigned {0,1}: embedding 3 (chopped polynomial), c = (k−1)/k → 1.
	for _, dk := range [][2]int{{16, 4}, {32, 8}, {32, 32}, {64, 64}} {
		d, k := dk[0], dk[1]
		e, err := embed.NewChopped01(d, k)
		if err != nil {
			return err
		}
		p := e.Params()
		ok := pipelineOK(rng, d, func(in *ovp.Instance) (ovp.Pair, bool) {
			return ovp.SolveViaBitsEmbedding(in, e)
		})
		tb.Add("unsigned {0,1}", fmt.Sprintf("E3(k=%d)", k),
			p.D1, p.D2, p.CS, p.S, p.C(), p.Ratio(), ok)
	}
	fmt.Print(tb.String())
	fmt.Println("# c=cs/s is the hard approximation the embedding certifies; ratio is log(s/d2)/log(cs/d2) (Theorem 2).")
	fmt.Println()
	return nil
}

// pipelineOK runs the Lemma 2 pipeline on a planted and an unplanted
// instance and reports whether both answers are correct.
func pipelineOK(rng *xrand.RNG, d int, solve func(*ovp.Instance) (ovp.Pair, bool)) bool {
	pos, want := ovp.Planted(rng, 8, 10, d, 0.2, true)
	got, ok := solve(pos)
	if !ok || got != want {
		return false
	}
	neg, _ := ovp.Planted(rng, 8, 10, d, 0.2, false)
	if _, ok := solve(neg); ok {
		return false
	}
	return true
}

// permissibleRows measures the work exponents of the two subquadratic
// algorithms on the permissible side of Table 1.
func permissibleRows(quick bool) error {
	fmt.Println("# Table 1 — permissible ranges (measured subquadratic algorithms)")

	// (a) §4.3 sketch join: c = n^{−1/κ}, predicted per-query work
	// exponent 1−2/κ (total 2−2/κ). The work proxy is the total sketch
	// rows touched per query.
	ns := []int{256, 512, 1024, 2048}
	if quick {
		ns = []int{256, 512, 1024}
	}
	tb := stats.NewTable("algorithm", "kappa", "c(n=max)", "measured_exp", "predicted_exp")
	for _, kappa := range []float64{2.5, 3, 4} {
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		for _, n := range ns {
			work := sketchWorkPerQuery(n, kappa)
			xs = append(xs, float64(n))
			ys = append(ys, work)
		}
		slope := stats.LogLogSlope(xs, ys)
		tb.Add("sketch-join", kappa,
			1/math.Pow(float64(ns[len(ns)-1]), 1/kappa), slope, 1-2/kappa)
	}

	// (b) {0,1} LSH join with MinHash: predicted query exponent
	// ρ = log(s/d)/log(cs/d) in Jaccard terms; the work proxy is the
	// candidate count per query.
	xs := make([]float64, 0, len(ns))
	ys := make([]float64, 0, len(ns))
	var rhoPred float64
	for _, n := range ns {
		cands, rho := minhashCandidatesPerQuery(n, quick)
		rhoPred = rho
		xs = append(xs, float64(n))
		ys = append(ys, math.Max(cands, 0.5))
	}
	tb.Add("minhash-join {0,1}", "-", "-", stats.LogLogSlope(xs, ys), rhoPred)
	fmt.Print(tb.String())
	fmt.Println("# sketch-join: per-query work ~ n^{1−2/κ} with approximation c = n^{−1/κ} (§4.3).")
	fmt.Println("# minhash-join: per-query candidates ~ n^ρ with ρ = log(P1)/log(P2) from the Jaccard gap.")
	return nil
}

// sketchWorkPerQuery builds the real §4.3 MaxDot structure over n
// random vectors and returns its per-query row count — the measured
// query cost driver (the full cost is rows × d × copies). The
// structure's row count carries a log n boosting factor on top of
// n^{1−2/κ}, which biases the measured exponent slightly upward; the
// residual is reported against the clean prediction.
func sketchWorkPerQuery(n int, kappa float64) float64 {
	const d = 8
	rng := xrand.New(uint64(n) * 31)
	data := make([]vec.Vector, n)
	for i := range data {
		data[i] = vec.Vector(rng.NormalVec(d))
	}
	md, err := sketch.NewMaxDot(data, kappa, 1, 17)
	if err != nil {
		panic(err)
	}
	// Remove the log factor so the slope isolates the polynomial term.
	return float64(md.SketchRows()) / math.Log(float64(n)+2)
}

// minhashCandidatesPerQuery builds a MinHash banding index over n binary
// sets with the theory-prescribed parameters K = ⌈ln n / ln(1/j2)⌉ and
// L = ⌈n^ρ⌉, and returns the mean per-query work (candidates + L table
// probes) plus the predicted exponent ρ = log(j1)/log(j2).
func minhashCandidatesPerQuery(n int, quick bool) (float64, float64) {
	// Near-uniform sets of size `avg` over universe d keep background
	// Jaccard similarity below j2 with good margin.
	const d, avg = 256, 12
	const j1, j2 = 0.5, 0.1
	rng := xrand.New(uint64(n))
	data := dataset.BinarySets(rng, n, d, avg, 0.05)
	nq := 24
	if quick {
		nq = 12
	}
	queries := dataset.BinarySets(rng, nq, d, avg, 0.05)
	fam, err := lsh.NewMinHash(d)
	if err != nil {
		panic(err)
	}
	rho := math.Log(j1) / math.Log(j2)
	k := int(math.Ceil(math.Log(float64(n)) / math.Log(1/j2)))
	l := int(math.Ceil(math.Pow(float64(n), rho)))
	j := join.LSHJoiner{Family: fam, K: k, L: l, Seed: 9}
	res, err := j.Unsigned(data, queries, float64(avg)/2, float64(avg)/4)
	if err != nil {
		panic(err)
	}
	// Per-query work: candidate verifications plus the L table lookups
	// (the n^ρ term that dominates when candidate lists are empty).
	// Unsigned probes both q and −q; −q has empty support and contributes
	// no candidates, so halve the probe count.
	work := float64(res.Compared)/float64(nq)/2 + float64(l)
	return work, rho
}
